"""Equivalence guards for the vectorized GP hot path.

The hot-path rework (cached kernel workspaces, fused LML value+gradient,
incremental Cholesky updates, batched/lockstep acquisition evaluation and
the opt-in process pool) is pure plumbing: every optimization must return
what the straightforward implementation returns, to tight tolerance.
These tests pin that contract so future performance work cannot silently
change numbers.
"""

import numpy as np
import pytest

from repro.acquisition.functions import (
    MultiWeightAcquisition,
    WeightedAcquisition,
    pbo_weights,
)
from repro.bo.batch import BatchBO
from repro.bo.engine import RunSpec
from repro.bo.propose import propose_batch
from repro.circuits.behavioral.uvlo import UVLOTestbench
from repro.gp import GaussianProcess
from repro.gp.evaluator import MarginalLikelihoodEvaluator
from repro.kernels import (
    Matern32,
    Matern52,
    RationalQuadratic,
    SquaredExponential,
)
from repro.optim import Cobyla
from repro.runtime import (
    BrokerConfig,
    EvaluationBroker,
    FaultInjectingObjective,
    FaultPlan,
    FunctionObjective,
)


def _dataset(n, d, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1.0, 1.0, (n, d))
    y = np.sin(X.sum(axis=1)) + 0.1 * rng.standard_normal(n)
    return X, y


class TestIncrementalCholeskyEquivalence:
    """``add_data`` rank-k updates must match a from-scratch refit."""

    @pytest.mark.parametrize("batch", [1, 3, 7])
    def test_matches_full_refit(self, batch):
        X, y = _dataset(40, 4, seed=1)
        n0 = 40 - 2 * batch

        inc = GaussianProcess(Matern52(dim=4, ard=True), noise_variance=1e-4)
        inc.add_data(X[:n0], y[:n0])
        inc.add_data(X[n0 : n0 + batch], y[n0 : n0 + batch])
        inc.add_data(X[n0 + batch :], y[n0 + batch :])

        full = GaussianProcess(Matern52(dim=4, ard=True), noise_variance=1e-4)
        full.fit(X, y)

        Z = _dataset(16, 4, seed=9)[0]
        p_inc, p_full = inc.predict(Z), full.predict(Z)
        np.testing.assert_allclose(p_inc.mean, p_full.mean, atol=1e-8)
        np.testing.assert_allclose(p_inc.variance, p_full.variance, atol=1e-8)
        assert inc.log_marginal_likelihood() == pytest.approx(
            full.log_marginal_likelihood(), abs=1e-8
        )

    def test_many_small_appends(self):
        X, y = _dataset(36, 3, seed=2)
        inc = GaussianProcess(SquaredExponential(dim=3), noise_variance=1e-4)
        inc.add_data(X[:12], y[:12])
        for i in range(12, 36, 2):
            inc.add_data(X[i : i + 2], y[i : i + 2])
        full = GaussianProcess(SquaredExponential(dim=3), noise_variance=1e-4)
        full.fit(X, y)
        Z = _dataset(10, 3, seed=11)[0]
        np.testing.assert_allclose(
            inc.predict(Z).mean, full.predict(Z).mean, atol=1e-8
        )
        np.testing.assert_allclose(
            inc.predict(Z).variance, full.predict(Z).variance, atol=1e-8
        )

    def test_append_after_theta_change_still_exact(self):
        """Hyperparameter moves force the full-refit fallback, exactly."""
        X, y = _dataset(30, 3, seed=3)
        inc = GaussianProcess(Matern32(dim=3), noise_variance=1e-4)
        inc.add_data(X[:20], y[:20])
        theta = inc.theta
        theta[:-1] += 0.3  # perturb kernel params between appends
        inc.theta = theta
        inc.add_data(X[20:], y[20:])

        full = GaussianProcess(Matern32(dim=3), noise_variance=1e-4)
        full.fit(X[:1], y[:1])  # any data; theta setter refits
        full.theta = theta
        full.fit(X, y)
        Z = _dataset(8, 3, seed=13)[0]
        np.testing.assert_allclose(
            inc.predict(Z).mean, full.predict(Z).mean, atol=1e-8
        )


class TestFusedEvaluatorEquivalence:
    """One-pass (lml, grad) must equal the two-call model path."""

    KERNELS = {
        "matern52-ard": lambda: Matern52(dim=4, ard=True),
        "se-iso": lambda: SquaredExponential(dim=4),
        "rq-ard": lambda: RationalQuadratic(dim=4, ard=True),
    }

    @pytest.mark.parametrize("kernel_name", sorted(KERNELS))
    def test_matches_model_two_call_path(self, kernel_name):
        X, y = _dataset(35, 4, seed=4)
        gp = GaussianProcess(
            self.KERNELS[kernel_name](), noise_variance=1e-3, train_noise=True
        ).fit(X, y)
        evaluator = MarginalLikelihoodEvaluator(gp)
        bounds = gp.theta_bounds()
        rng = np.random.default_rng(7)
        reference = GaussianProcess(
            self.KERNELS[kernel_name](), noise_variance=1e-3, train_noise=True
        ).fit(X, y)
        for _ in range(5):
            theta = rng.uniform(
                np.maximum(bounds[:, 0], -3.0), np.minimum(bounds[:, 1], 3.0)
            )
            lml, grad = evaluator.evaluate(theta)
            reference.theta = theta
            assert lml == pytest.approx(
                reference.log_marginal_likelihood(), abs=1e-8
            )
            np.testing.assert_allclose(
                grad,
                reference.log_marginal_likelihood_gradient(),
                atol=1e-8,
                rtol=1e-8,
            )

    def test_does_not_mutate_source_gp(self):
        X, y = _dataset(25, 3, seed=5)
        gp = GaussianProcess(Matern52(dim=3), noise_variance=1e-3).fit(X, y)
        theta_before = gp.theta.copy()
        lml_before = gp.log_marginal_likelihood()
        evaluator = MarginalLikelihoodEvaluator(gp)
        evaluator.evaluate(theta_before + 0.5)
        np.testing.assert_array_equal(gp.theta, theta_before)
        assert gp.log_marginal_likelihood() == lml_before

    def test_repeated_evaluations_are_stable(self):
        """Workspace buffer reuse must not leak state across thetas."""
        X, y = _dataset(30, 4, seed=6)
        gp = GaussianProcess(
            Matern52(dim=4, ard=True), noise_variance=1e-3
        ).fit(X, y)
        evaluator = MarginalLikelihoodEvaluator(gp)
        theta_a = gp.theta
        theta_b = theta_a + 0.4
        first = evaluator.evaluate(theta_a)
        evaluator.evaluate(theta_b)  # dirty every cached buffer
        again = evaluator.evaluate(theta_a)
        assert again[0] == pytest.approx(first[0], abs=1e-12)
        np.testing.assert_allclose(again[1], first[1], atol=1e-12)


class TestBatchedAcquisitionEquivalence:
    """Vectorized acquisition scoring must match point-at-a-time calls."""

    def test_evaluate_matches_scalar_calls(self):
        X, y = _dataset(30, 5, seed=8)
        gp = GaussianProcess(Matern52(dim=5), noise_variance=1e-4).fit(X, y)
        acq = WeightedAcquisition(gp, weight=0.3)
        Z = _dataset(20, 5, seed=15)[0]
        batched = acq.evaluate(Z)
        pointwise = np.array([float(acq(z)) for z in Z])
        np.testing.assert_allclose(batched, pointwise, atol=1e-12)


class TestParallelEquivalence:
    """``n_jobs > 1`` must reproduce the sequential results exactly."""

    def _proposal_setup(self):
        X, y = _dataset(25, 3, seed=10)
        gp = GaussianProcess(
            Matern52(dim=3, lengthscale=1.5), noise_variance=1e-4
        ).fit(X, y)
        box = np.column_stack([-np.ones(3), np.ones(3)])
        return gp, pbo_weights(3), box

    def test_propose_batch_parallel_identical(self):
        gp, weights, box = self._proposal_setup()
        seq = propose_batch(gp, weights, box, n_jobs=1)
        par = propose_batch(gp, weights, box, n_jobs=2)
        np.testing.assert_array_equal(seq.X, par.X)
        assert seq.n_evaluations == par.n_evaluations

    def test_batch_bo_parallel_identical_y(self):
        def shifted_bowl(x):
            return float(np.sum(np.asarray(x) ** 2) - 1.0)

        box = np.column_stack([-np.ones(2), np.ones(2)])
        objective = FunctionObjective(shifted_bowl, dim=2, bounds=box)
        runs = []
        for n_jobs in (1, 2):
            engine = BatchBO(
                batch_size=2, n_restarts=1, seed=42, n_jobs=n_jobs
            )
            runs.append(
                engine.solve(objective=objective, spec=RunSpec(n_init=4, n_batches=2))
            )
        np.testing.assert_array_equal(runs[0].X, runs[1].X)
        np.testing.assert_array_equal(runs[0].y, runs[1].y)


class TestGemmAcquisitionEquivalence:
    """The one-GEMM multi-weight scoring vs per-weight Eq. 9 evaluation."""

    def _fitted(self, n_weights=5):
        X, y = _dataset(30, 4, seed=3)
        gp = GaussianProcess(
            Matern52(dim=4, ard=True), noise_variance=1e-4
        ).fit(X, y)
        return gp, pbo_weights(n_weights)

    def test_evaluate_all_matches_per_weight_loop(self):
        gp, weights = self._fitted()
        multi = MultiWeightAcquisition(gp, weights)
        Z = _dataset(25, 4, seed=7)[0]
        batched = multi.evaluate_all(Z)
        assert batched.shape == (weights.size, 25)
        for i, w in enumerate(weights):
            row = WeightedAcquisition(gp, weight=float(w)).evaluate(Z)
            np.testing.assert_allclose(batched[i], row, atol=1e-8)

    def test_evaluate_segments_matches_per_weight(self):
        gp, weights = self._fitted()
        multi = MultiWeightAcquisition(gp, weights)
        segments = [(0, 4), (2, 1), (4, 6), (2, 3)]
        union = _dataset(sum(m for _, m in segments), 4, seed=11)[0]
        sliced = multi.evaluate_segments(union, segments)
        offset = 0
        for (index, m), values in zip(segments, sliced):
            block = union[offset : offset + m]
            expected = WeightedAcquisition(
                gp, weight=float(weights[index])
            ).evaluate(block)
            np.testing.assert_allclose(values, expected, atol=1e-8)
            offset += m

    def test_segment_lengths_validated(self):
        gp, weights = self._fitted(3)
        multi = MultiWeightAcquisition(gp, weights)
        union = _dataset(5, 4, seed=0)[0]
        with pytest.raises(ValueError, match="segment lengths"):
            multi.evaluate_segments(union, [(0, 2), (1, 2)])

    def test_weight_index_validated(self):
        gp, weights = self._fitted(3)
        multi = MultiWeightAcquisition(gp, weights)
        union = _dataset(2, 4, seed=0)[0]
        with pytest.raises(IndexError, match="weight index"):
            multi.evaluate_segments(union, [(3, 2)])

    def test_weights_validated(self):
        gp, _ = self._fitted(2)
        with pytest.raises(ValueError):
            MultiWeightAcquisition(gp, [])
        with pytest.raises(ValueError):
            MultiWeightAcquisition(gp, [0.2, 1.5])


class TestCobylaCoroutineEquivalence:
    """``Cobyla.search`` driven by hand must replay ``minimize`` exactly."""

    @staticmethod
    def _fun(x):
        x = np.asarray(x)
        return float(np.sum((x - 0.3) ** 2) + 0.1 * np.sin(5.0 * x[0]))

    def _drive(self, cobyla, lower, upper, x0):
        engine = cobyla.search(lower, upper, x0=x0)
        points = next(engine)
        best_x, best_f, n_evaluations = None, np.inf, 0
        while True:
            values = np.array([self._fun(p) for p in points], dtype=float)
            n_evaluations += values.shape[0]
            j = int(np.argmin(values))
            if float(values[j]) < best_f:
                best_f = float(values[j])
                best_x = points[j].copy()
            try:
                points = engine.send(values)
            except StopIteration as stop:
                return best_x, best_f, n_evaluations, stop.value

    def test_search_driven_matches_minimize(self):
        cobyla = Cobyla(max_evaluations=200)
        lower, upper = -np.ones(3), np.ones(3)
        x0 = np.array([0.4, -0.2, 0.1])
        bounds = np.column_stack([lower, upper])
        reference = cobyla.minimize(self._fun, bounds, x0=x0)
        best_x, best_f, n_evals, outcome = self._drive(
            cobyla, lower, upper, x0
        )
        np.testing.assert_array_equal(best_x, reference.x)
        assert best_f == reference.fun
        assert n_evals == reference.n_evaluations
        assert outcome.success == reference.success
        assert outcome.message == reference.message

    def test_budget_below_simplex_falls_back_to_x0(self):
        cobyla = Cobyla(max_evaluations=2)
        lower, upper = -np.ones(3), np.ones(3)
        x0 = np.array([0.1, 0.2, -0.3])
        best_x, _, n_evals, outcome = self._drive(cobyla, lower, upper, x0)
        np.testing.assert_array_equal(best_x, x0)
        assert n_evals == 1
        assert not outcome.success
        assert "budget below simplex" in outcome.message


class TestLockstepProposalEquivalence:
    """Lockstep proposals must match the independent per-weight searches."""

    def _setup(self):
        X, y = _dataset(25, 3, seed=10)
        gp = GaussianProcess(
            Matern52(dim=3, lengthscale=1.5), noise_variance=1e-4
        ).fit(X, y)
        box = np.column_stack([-np.ones(3), np.ones(3)])
        return gp, pbo_weights(4), box

    def test_lockstep_matches_independent_fallback(self, monkeypatch):
        import repro.bo.propose as propose_mod

        gp, weights, box = self._setup()
        lockstep = propose_batch(gp, weights, box)
        monkeypatch.setattr(propose_mod, "supports_lockstep", lambda s: False)
        fallback = propose_batch(gp, weights, box)
        np.testing.assert_allclose(fallback.X, lockstep.X, atol=1e-8)
        assert fallback.n_evaluations == lockstep.n_evaluations

    def test_local_lockstep_matches_refine_fallback(self, monkeypatch):
        import repro.bo.propose as propose_mod

        gp, weights, box = self._setup()
        lockstep = propose_batch(gp, weights, box)
        monkeypatch.setattr(
            propose_mod, "supports_local_lockstep", lambda s: False
        )
        fallback = propose_batch(gp, weights, box)
        np.testing.assert_allclose(fallback.X, lockstep.X, atol=1e-8)
        assert fallback.n_evaluations == lockstep.n_evaluations


class TestDispatchEquivalence:
    """Chunked vectorized broker dispatch vs the historical row path."""

    def _objective(self):
        return UVLOTestbench().objective("delta_vthl")

    def _points(self, n=40, seed=4):
        obj = self._objective()
        rng = np.random.default_rng(seed)
        return rng.uniform(-1.0, 1.0, (n, obj.dim))

    def test_chunk_matches_row_bitwise(self):
        X = self._points()
        row = EvaluationBroker(
            self._objective(), BrokerConfig(dispatch="row")
        ).evaluate_batch(X)
        chunk = EvaluationBroker(
            self._objective(), BrokerConfig(dispatch="chunk")
        ).evaluate_batch(X)
        np.testing.assert_array_equal(row.y, chunk.y)
        np.testing.assert_array_equal(row.X, chunk.X)

    def test_chunk_size_invariant(self):
        X = self._points(n=23, seed=8)
        reference = EvaluationBroker(
            self._objective(), BrokerConfig(dispatch="row")
        ).evaluate_batch(X)
        for chunk_size in (1, 5, 23, 64):
            broker = EvaluationBroker(
                self._objective(),
                BrokerConfig(dispatch="chunk", chunk_size=chunk_size),
            )
            np.testing.assert_array_equal(
                broker.evaluate_batch(X).y, reference.y
            )

    def test_auto_dispatch_selection(self):
        vectorized = self._objective()
        assert vectorized.prefers_batch
        scalar = FunctionObjective(lambda x: float(np.sum(x**2)), dim=2)
        assert BrokerConfig().resolve_dispatch(vectorized) == "chunk"
        assert BrokerConfig().resolve_dispatch(scalar) == "row"
        assert (
            BrokerConfig(timeout_seconds=5.0).resolve_dispatch(vectorized)
            == "row"
        )
        assert BrokerConfig(dispatch="row").resolve_dispatch(vectorized) == "row"

    def test_chunk_timeout_combination_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            BrokerConfig(dispatch="chunk", timeout_seconds=1.0)

    def test_chunk_with_fault_injection_matches_clean(self):
        X = self._points(n=30, seed=5)
        clean = EvaluationBroker(
            self._objective(), BrokerConfig(dispatch="row")
        ).evaluate_batch(X)
        faulty = FaultInjectingObjective(
            self._objective(),
            FaultPlan(failure_rate=0.3, nan_fraction=0.4, seed=5),
        )
        broker = EvaluationBroker(
            faulty,
            BrokerConfig(
                dispatch="chunk", max_retries=5, backoff_seconds=0.0
            ),
        )
        batch = broker.evaluate_batch(X)
        assert broker.stats.n_attempt_failures > 0  # faults did fire
        np.testing.assert_array_equal(batch.y, clean.y)

    def test_chunk_skip_policy_drops_only_bad_rows(self):
        def half_nan(x):
            return float("nan") if x[0] > 0 else float(np.sum(x**2))

        objective = FunctionObjective(half_nan, dim=2)
        X = np.array([[-0.5, 0.1], [0.5, 0.2], [-0.25, 0.3], [0.75, 0.4]])
        broker = EvaluationBroker(
            objective,
            BrokerConfig(
                dispatch="chunk",
                max_retries=0,
                failure_policy="skip",
            ),
        )
        batch = broker.evaluate_batch(X)
        np.testing.assert_array_equal(batch.index, [0, 2])
        np.testing.assert_array_equal(batch.X, X[[0, 2]])

    def test_campaign_chunk_vs_row_identical(self):
        from repro.bo.rembo import RemboBO
        from repro.runtime import RuntimePolicy

        results = []
        for dispatch in ("row", "chunk"):
            tb = UVLOTestbench()
            engine = RemboBO(
                batch_size=3,
                embedding_dim=2,
                tune_every=1,
                n_restarts=1,
                seed=11,
            )
            results.append(
                engine.solve(
                    objective=tb.objective("delta_vthl"),
                    spec=RunSpec(
                        bounds=tb.bounds(),
                        n_init=5,
                        n_batches=2,
                        threshold=tb.threshold("delta_vthl"),
                    ),
                    policy=RuntimePolicy(
                        config=BrokerConfig(dispatch=dispatch)
                    ),
                )
            )
        row, chunk = results
        np.testing.assert_array_equal(row.X, chunk.X)
        np.testing.assert_array_equal(row.y, chunk.y)
