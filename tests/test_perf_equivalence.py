"""Equivalence guards for the vectorized GP hot path.

The hot-path rework (cached kernel workspaces, fused LML value+gradient,
incremental Cholesky updates, batched/lockstep acquisition evaluation and
the opt-in process pool) is pure plumbing: every optimization must return
what the straightforward implementation returns, to tight tolerance.
These tests pin that contract so future performance work cannot silently
change numbers.
"""

import numpy as np
import pytest

from repro.acquisition.functions import WeightedAcquisition, pbo_weights
from repro.bo.batch import BatchBO
from repro.bo.engine import RunSpec
from repro.bo.propose import propose_batch
from repro.gp import GaussianProcess
from repro.gp.evaluator import MarginalLikelihoodEvaluator
from repro.kernels import (
    Matern32,
    Matern52,
    RationalQuadratic,
    SquaredExponential,
)
from repro.runtime import FunctionObjective


def _dataset(n, d, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1.0, 1.0, (n, d))
    y = np.sin(X.sum(axis=1)) + 0.1 * rng.standard_normal(n)
    return X, y


class TestIncrementalCholeskyEquivalence:
    """``add_data`` rank-k updates must match a from-scratch refit."""

    @pytest.mark.parametrize("batch", [1, 3, 7])
    def test_matches_full_refit(self, batch):
        X, y = _dataset(40, 4, seed=1)
        n0 = 40 - 2 * batch

        inc = GaussianProcess(Matern52(dim=4, ard=True), noise_variance=1e-4)
        inc.add_data(X[:n0], y[:n0])
        inc.add_data(X[n0 : n0 + batch], y[n0 : n0 + batch])
        inc.add_data(X[n0 + batch :], y[n0 + batch :])

        full = GaussianProcess(Matern52(dim=4, ard=True), noise_variance=1e-4)
        full.fit(X, y)

        Z = _dataset(16, 4, seed=9)[0]
        p_inc, p_full = inc.predict(Z), full.predict(Z)
        np.testing.assert_allclose(p_inc.mean, p_full.mean, atol=1e-8)
        np.testing.assert_allclose(p_inc.variance, p_full.variance, atol=1e-8)
        assert inc.log_marginal_likelihood() == pytest.approx(
            full.log_marginal_likelihood(), abs=1e-8
        )

    def test_many_small_appends(self):
        X, y = _dataset(36, 3, seed=2)
        inc = GaussianProcess(SquaredExponential(dim=3), noise_variance=1e-4)
        inc.add_data(X[:12], y[:12])
        for i in range(12, 36, 2):
            inc.add_data(X[i : i + 2], y[i : i + 2])
        full = GaussianProcess(SquaredExponential(dim=3), noise_variance=1e-4)
        full.fit(X, y)
        Z = _dataset(10, 3, seed=11)[0]
        np.testing.assert_allclose(
            inc.predict(Z).mean, full.predict(Z).mean, atol=1e-8
        )
        np.testing.assert_allclose(
            inc.predict(Z).variance, full.predict(Z).variance, atol=1e-8
        )

    def test_append_after_theta_change_still_exact(self):
        """Hyperparameter moves force the full-refit fallback, exactly."""
        X, y = _dataset(30, 3, seed=3)
        inc = GaussianProcess(Matern32(dim=3), noise_variance=1e-4)
        inc.add_data(X[:20], y[:20])
        theta = inc.theta
        theta[:-1] += 0.3  # perturb kernel params between appends
        inc.theta = theta
        inc.add_data(X[20:], y[20:])

        full = GaussianProcess(Matern32(dim=3), noise_variance=1e-4)
        full.fit(X[:1], y[:1])  # any data; theta setter refits
        full.theta = theta
        full.fit(X, y)
        Z = _dataset(8, 3, seed=13)[0]
        np.testing.assert_allclose(
            inc.predict(Z).mean, full.predict(Z).mean, atol=1e-8
        )


class TestFusedEvaluatorEquivalence:
    """One-pass (lml, grad) must equal the two-call model path."""

    KERNELS = {
        "matern52-ard": lambda: Matern52(dim=4, ard=True),
        "se-iso": lambda: SquaredExponential(dim=4),
        "rq-ard": lambda: RationalQuadratic(dim=4, ard=True),
    }

    @pytest.mark.parametrize("kernel_name", sorted(KERNELS))
    def test_matches_model_two_call_path(self, kernel_name):
        X, y = _dataset(35, 4, seed=4)
        gp = GaussianProcess(
            self.KERNELS[kernel_name](), noise_variance=1e-3, train_noise=True
        ).fit(X, y)
        evaluator = MarginalLikelihoodEvaluator(gp)
        bounds = gp.theta_bounds()
        rng = np.random.default_rng(7)
        reference = GaussianProcess(
            self.KERNELS[kernel_name](), noise_variance=1e-3, train_noise=True
        ).fit(X, y)
        for _ in range(5):
            theta = rng.uniform(
                np.maximum(bounds[:, 0], -3.0), np.minimum(bounds[:, 1], 3.0)
            )
            lml, grad = evaluator.evaluate(theta)
            reference.theta = theta
            assert lml == pytest.approx(
                reference.log_marginal_likelihood(), abs=1e-8
            )
            np.testing.assert_allclose(
                grad,
                reference.log_marginal_likelihood_gradient(),
                atol=1e-8,
                rtol=1e-8,
            )

    def test_does_not_mutate_source_gp(self):
        X, y = _dataset(25, 3, seed=5)
        gp = GaussianProcess(Matern52(dim=3), noise_variance=1e-3).fit(X, y)
        theta_before = gp.theta.copy()
        lml_before = gp.log_marginal_likelihood()
        evaluator = MarginalLikelihoodEvaluator(gp)
        evaluator.evaluate(theta_before + 0.5)
        np.testing.assert_array_equal(gp.theta, theta_before)
        assert gp.log_marginal_likelihood() == lml_before

    def test_repeated_evaluations_are_stable(self):
        """Workspace buffer reuse must not leak state across thetas."""
        X, y = _dataset(30, 4, seed=6)
        gp = GaussianProcess(
            Matern52(dim=4, ard=True), noise_variance=1e-3
        ).fit(X, y)
        evaluator = MarginalLikelihoodEvaluator(gp)
        theta_a = gp.theta
        theta_b = theta_a + 0.4
        first = evaluator.evaluate(theta_a)
        evaluator.evaluate(theta_b)  # dirty every cached buffer
        again = evaluator.evaluate(theta_a)
        assert again[0] == pytest.approx(first[0], abs=1e-12)
        np.testing.assert_allclose(again[1], first[1], atol=1e-12)


class TestBatchedAcquisitionEquivalence:
    """Vectorized acquisition scoring must match point-at-a-time calls."""

    def test_evaluate_matches_scalar_calls(self):
        X, y = _dataset(30, 5, seed=8)
        gp = GaussianProcess(Matern52(dim=5), noise_variance=1e-4).fit(X, y)
        acq = WeightedAcquisition(gp, weight=0.3)
        Z = _dataset(20, 5, seed=15)[0]
        batched = acq.evaluate(Z)
        pointwise = np.array([float(acq(z)) for z in Z])
        np.testing.assert_allclose(batched, pointwise, atol=1e-12)


class TestParallelEquivalence:
    """``n_jobs > 1`` must reproduce the sequential results exactly."""

    def _proposal_setup(self):
        X, y = _dataset(25, 3, seed=10)
        gp = GaussianProcess(
            Matern52(dim=3, lengthscale=1.5), noise_variance=1e-4
        ).fit(X, y)
        box = np.column_stack([-np.ones(3), np.ones(3)])
        return gp, pbo_weights(3), box

    def test_propose_batch_parallel_identical(self):
        gp, weights, box = self._proposal_setup()
        seq = propose_batch(gp, weights, box, n_jobs=1)
        par = propose_batch(gp, weights, box, n_jobs=2)
        np.testing.assert_array_equal(seq.X, par.X)
        assert seq.n_evaluations == par.n_evaluations

    def test_batch_bo_parallel_identical_y(self):
        def shifted_bowl(x):
            return float(np.sum(np.asarray(x) ** 2) - 1.0)

        box = np.column_stack([-np.ones(2), np.ones(2)])
        objective = FunctionObjective(shifted_bowl, dim=2, bounds=box)
        runs = []
        for n_jobs in (1, 2):
            engine = BatchBO(
                batch_size=2, n_restarts=1, seed=42, n_jobs=n_jobs
            )
            runs.append(
                engine.solve(objective=objective, spec=RunSpec(n_init=4, n_batches=2))
            )
        np.testing.assert_array_equal(runs[0].X, runs[1].X)
        np.testing.assert_array_equal(runs[0].y, runs[1].y)
