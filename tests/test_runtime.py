"""Tests for the evaluation runtime: objective protocol, cache, ledger, broker.

The fault-injection matrix (timeout→retry→success, retry exhaustion per
failure policy, NaN quarantine) lives here; campaign-level resume tests are
in ``test_runtime_resume.py``.
"""

from __future__ import annotations

import pickle
import time

import numpy as np
import pytest

from repro.bo.records import RunRecorder, RunResult
from repro.runtime import (
    BrokerConfig,
    EvaluationBroker,
    EvaluationError,
    FaultInjectingObjective,
    FaultInjectingTestbench,
    FaultPlan,
    FunctionObjective,
    Objective,
    ResultCache,
    RunLedger,
    RuntimePolicy,
    TransientSimulationError,
    batch_digests,
    point_digest,
    read_ledger,
    require_objective,
)
from repro.utils.validation import unit_cube_bounds


def bowl(x):
    return float(np.sum(np.asarray(x) ** 2))


class CountingObjective(Objective):
    """A 2-D bowl that counts evaluations and can misbehave per point."""

    def __init__(self, fail_first=0, mode="error"):
        self.calls = 0
        self.per_point: dict[bytes, int] = {}
        self.fail_first = fail_first
        self.mode = mode

    @property
    def dim(self) -> int:
        return 2

    @property
    def bounds(self):
        return unit_cube_bounds(2)

    @property
    def cache_key(self) -> str:
        return "counting-bowl"

    def evaluate(self, X):
        X = np.atleast_2d(np.asarray(X, dtype=float))
        out = np.empty(X.shape[0])
        for i, x in enumerate(X):
            self.calls += 1
            key = x.tobytes()
            seen = self.per_point.get(key, 0)
            self.per_point[key] = seen + 1
            if seen < self.fail_first:
                if self.mode == "nan":
                    out[i] = float("nan")
                    continue
                if self.mode == "hang":
                    time.sleep(0.3)
                raise TransientSimulationError(f"transient #{seen}")
            out[i] = bowl(x)
        return out


class TestObjectiveProtocol:
    def test_function_objective_row_and_batch(self):
        obj = FunctionObjective(bowl, dim=3)
        assert obj(np.array([1.0, 2.0, 0.0])) == pytest.approx(5.0)
        out = obj(np.array([[1.0, 0.0, 0.0], [0.0, 2.0, 0.0]]))
        assert out.tolist() == [1.0, 4.0]

    def test_vectorized_function(self):
        obj = FunctionObjective(
            lambda X: np.sum(X**2, axis=1), dim=2, vectorized=True
        )
        out = obj.evaluate(np.array([[1.0, 1.0], [2.0, 0.0]]))
        assert out.tolist() == [2.0, 4.0]

    def test_require_objective_passthrough(self):
        obj = FunctionObjective(bowl, dim=2)
        assert require_objective(obj, "test") is obj

    def test_require_objective_rejects_bare_callable(self):
        with pytest.raises(TypeError, match="FunctionObjective"):
            require_objective(bowl, "EvaluationBroker")

    def test_require_objective_names_caller(self):
        with pytest.raises(TypeError, match="Campaign"):
            require_objective(42, "Campaign")

    def test_cache_key_default_and_override(self):
        assert "d=2" in FunctionObjective(bowl, dim=2).cache_key
        assert FunctionObjective(bowl, dim=2, cache_key="k").cache_key == "k"

    def test_bad_output_length(self):
        obj = FunctionObjective(
            lambda X: np.zeros(3), dim=2, vectorized=True
        )
        with pytest.raises(ValueError):
            obj(np.zeros((2, 2)))


class TestResultCache:
    def test_digest_rounding(self):
        x = np.array([0.5, -0.25])
        same = x + 1e-14  # below the 12-decimal resolution
        different = x + 1e-9
        assert point_digest("k", x) == point_digest("k", same)
        assert point_digest("k", x) != point_digest("k", different)
        assert point_digest("k", x) != point_digest("other", x)

    def test_negative_zero_folds(self):
        assert point_digest("k", np.array([0.0])) == point_digest(
            "k", np.array([-0.0])
        )

    def test_hit_miss_counting(self):
        cache = ResultCache.in_memory()
        d = cache.key_for("k", np.array([1.0]))
        assert cache.get(d) is None
        cache.put(d, 3.5)
        assert cache.get(d) == 3.5
        assert cache.stats == {
            "size": 1, "hits": 1, "misses": 1, "evictions": 0
        }

    def test_bare_constructor_deprecated_but_working(self):
        with pytest.warns(DeprecationWarning, match="in_memory"):
            cache = ResultCache()
        cache.put("d", 1.0)
        assert cache.get("d") == 1.0

    def test_preload_does_not_count(self):
        cache = ResultCache.in_memory()
        cache.preload({"abc": 1.0})
        assert len(cache) == 1 and cache.hits == 0 and cache.misses == 0
        assert "abc" in cache

    def test_pickles_by_value(self):
        cache = ResultCache.in_memory()
        cache.put("d", 2.0)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.get("d") == 2.0
        clone.put("e", 1.0)  # lock was recreated

    def test_rejects_negative_decimals(self):
        with pytest.raises(ValueError):
            ResultCache.in_memory(decimals=-1)

    def test_batch_digests_match_point_digest(self):
        rng = np.random.default_rng(7)
        X = rng.uniform(-1.0, 1.0, (17, 3))
        X[0] = [0.0, -0.0, 0.5]  # the -0.0 fold must survive batching
        X[1] = X[2] + 1e-14  # below rounding resolution: same digest
        digests = batch_digests("k", X)
        assert digests == [point_digest("k", x) for x in X]
        assert digests[1] == digests[2]

    def test_keys_for_batch_respects_decimals(self):
        cache = ResultCache.in_memory(decimals=4)
        X = np.array([[0.123456, -0.5]])
        assert cache.keys_for_batch("k", X) == [cache.key_for("k", X[0])]
        assert cache.keys_for_batch("k", X) != batch_digests("k", X)

    def test_get_many_counts_like_sequential_gets(self):
        cache = ResultCache.in_memory()
        X = np.array([[1.0], [2.0], [3.0]])
        digests = cache.keys_for_batch("k", X)
        cache.put(digests[1], 4.5)
        assert cache.get_many(digests) == [None, 4.5, None]
        assert cache.stats == {
            "size": 1, "hits": 1, "misses": 2, "evictions": 0
        }


class TestRunLedger:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.append({"event": "campaign", "dim": 2, "cache_key": "k"})
            ledger.append(
                {
                    "event": "completed",
                    "id": 0,
                    "digest": "d0",
                    "x": [0.1, 0.2],
                    "y": 1.5,
                    "seconds": 0.0,
                    "attempt": 0,
                    "cached": False,
                }
            )
        replay = read_ledger(path)
        assert replay.n_completed == 1
        assert replay.completed == {"d0": 1.5}
        assert replay.X.tolist() == [[0.1, 0.2]]
        assert replay.y.tolist() == [1.5]
        assert not replay.truncated
        assert replay.campaigns()[0]["dim"] == 2

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.append({"event": "campaign", "dim": 1})
            ledger.append(
                {
                    "event": "completed",
                    "id": 0,
                    "digest": "d",
                    "x": [0.0],
                    "y": 2.0,
                }
            )
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"event": "compl')  # the interrupted write
        replay = read_ledger(path)
        assert replay.truncated
        assert replay.n_completed == 1

    def test_midfile_garbage_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            'garbage\n{"event": "campaign", "dim": 1}\n', encoding="utf-8"
        )
        with pytest.raises(ValueError, match="corrupt"):
            read_ledger(path)

    def test_empty_ledger_uses_campaign_dim(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.append({"event": "campaign", "dim": 7})
        replay = read_ledger(path)
        assert replay.X.shape == (0, 7)

    def test_duplicate_simulations_counted(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            for _ in range(2):
                ledger.append(
                    {"event": "completed", "digest": "d", "x": [0.0], "y": 1.0}
                )
        assert read_ledger(path).duplicate_simulations == 1

    def test_pickles_without_handle(self, tmp_path):
        ledger = RunLedger(tmp_path / "run.jsonl")
        ledger.append({"event": "campaign"})
        clone = pickle.loads(pickle.dumps(ledger))
        clone.append({"event": "campaign"})  # re-opens lazily
        assert len(read_ledger(ledger.path).events) == 2


class TestBrokerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BrokerConfig(timeout_seconds=0.0)
        with pytest.raises(ValueError):
            BrokerConfig(max_retries=-1)
        with pytest.raises(ValueError):
            BrokerConfig(failure_policy="explode")
        with pytest.raises(ValueError):
            BrokerConfig(failure_policy="penalty")  # needs a value
        with pytest.raises(ValueError):
            BrokerConfig(failure_policy="penalty", penalty_value=float("nan"))
        with pytest.raises(ValueError):
            BrokerConfig(executor="gpu")
        with pytest.raises(ValueError):
            BrokerConfig(backoff_jitter=1.5)

    def test_executor_resolution(self):
        assert BrokerConfig().resolve_executor() == "inline"
        assert BrokerConfig(timeout_seconds=1.0).resolve_executor() == "thread"
        assert BrokerConfig(n_jobs=4).resolve_executor() == "thread"
        assert BrokerConfig(executor="process").resolve_executor() == "process"


class TestBrokerFaultMatrix:
    def test_transient_error_retries_to_success(self):
        obj = CountingObjective(fail_first=2)
        broker = EvaluationBroker(
            obj, BrokerConfig(max_retries=2, backoff_seconds=0.0)
        )
        batch = broker.evaluate_batch(np.array([[0.5, 0.5]]))
        assert batch.y[0] == pytest.approx(0.5)
        assert broker.stats.n_retries == 2
        assert broker.stats.n_attempt_failures == 2
        assert broker.stats.n_completed == 1

    def test_nan_quarantined_and_retried(self):
        obj = CountingObjective(fail_first=1, mode="nan")
        broker = EvaluationBroker(
            obj, BrokerConfig(max_retries=1, backoff_seconds=0.0)
        )
        batch = broker.evaluate_batch(np.array([[0.5, 0.0]]))
        assert batch.y[0] == pytest.approx(0.25)  # NaN never reached the log
        assert broker.stats.n_attempt_failures == 1

    def test_timeout_then_retry_succeeds(self):
        obj = CountingObjective(fail_first=1, mode="hang")
        broker = EvaluationBroker(
            obj,
            BrokerConfig(
                timeout_seconds=0.05, max_retries=1, backoff_seconds=0.0
            ),
        )
        batch = broker.evaluate_batch(np.array([[0.5, 0.5]]))
        assert batch.y[0] == pytest.approx(0.5)
        assert broker.stats.n_retries == 1

    def test_exhaustion_raise_policy(self):
        obj = CountingObjective(fail_first=10)
        broker = EvaluationBroker(
            obj, BrokerConfig(max_retries=1, backoff_seconds=0.0)
        )
        with pytest.raises(EvaluationError):
            broker.evaluate_batch(np.array([[0.5, 0.5]]))

    def test_exhaustion_skip_policy(self):
        obj = CountingObjective(fail_first=10)
        broker = EvaluationBroker(
            obj,
            BrokerConfig(
                max_retries=0, backoff_seconds=0.0, failure_policy="skip"
            ),
        )
        X = np.array([[0.5, 0.5], [0.1, 0.2], [0.3, 0.3]])
        obj.per_point[X[1].tobytes()] = 10**6  # make only the middle row work
        batch = broker.evaluate_batch(X)
        assert batch.n_submitted == 3
        assert batch.index.tolist() == [1]
        assert batch.X.tolist() == [[0.1, 0.2]]
        assert broker.stats.n_skipped == 2

    def test_exhaustion_penalty_policy(self):
        obj = CountingObjective(fail_first=10)
        broker = EvaluationBroker(
            obj,
            BrokerConfig(
                max_retries=0,
                backoff_seconds=0.0,
                failure_policy="penalty",
                penalty_value=99.0,
            ),
        )
        batch = broker.evaluate_batch(np.array([[0.5, 0.5]]))
        assert batch.y.tolist() == [99.0]
        assert broker.stats.n_penalized == 1
        # a penalty is not a measurement: it must not enter the cache
        digest = broker.cache.key_for(obj.cache_key, np.array([0.5, 0.5]))
        assert digest not in broker.cache

    def test_single_point_skip_returns_none(self):
        obj = CountingObjective(fail_first=10)
        broker = EvaluationBroker(
            obj,
            BrokerConfig(
                max_retries=0, backoff_seconds=0.0, failure_policy="skip"
            ),
        )
        assert broker.evaluate(np.array([0.5, 0.5])) is None


class TestBrokerCache:
    def test_repeat_batch_served_from_cache(self):
        obj = CountingObjective()
        broker = EvaluationBroker(obj)
        X = np.array([[0.1, 0.2], [0.3, 0.4]])
        first = broker.evaluate_batch(X)
        second = broker.evaluate_batch(X)
        assert obj.calls == 2  # no re-simulation
        assert second.y.tolist() == first.y.tolist()
        assert broker.stats.n_cache_hits == 2

    def test_within_batch_duplicates_simulate_once(self):
        obj = CountingObjective()
        broker = EvaluationBroker(obj)
        batch = broker.evaluate_batch(np.array([[0.1, 0.1]] * 3))
        assert obj.calls == 1
        assert batch.y.tolist() == [bowl([0.1, 0.1])] * 3
        assert broker.stats.n_cache_hits == 2

    def test_shared_cache_across_brokers(self):
        obj = CountingObjective()
        policy = RuntimePolicy.shared()
        x = np.array([[0.2, 0.2]])
        EvaluationBroker(obj, cache=policy.cache).evaluate_batch(x)
        EvaluationBroker(obj, cache=policy.cache).evaluate_batch(x)
        assert obj.calls == 1

    def test_ledger_records_events(self, tmp_path):
        obj = CountingObjective(fail_first=1)
        ledger = RunLedger(tmp_path / "run.jsonl")
        broker = EvaluationBroker(
            obj, BrokerConfig(max_retries=1, backoff_seconds=0.0), ledger=ledger
        )
        broker.evaluate_batch(np.array([[0.5, 0.5]]))
        broker.evaluate_batch(np.array([[0.5, 0.5]]))
        ledger.close()
        replay = read_ledger(ledger.path)
        assert replay.counts["campaign"] == 1
        assert replay.counts["failed"] == 1
        assert replay.counts["retried"] == 1
        assert replay.counts["completed"] == 1
        assert replay.counts["cache_hit"] == 1
        assert replay.duplicate_simulations == 0


class TestRecorderIntegration:
    def test_broker_feeds_recorder(self):
        recorder = RunRecorder(method="T", model_dim=2)
        broker = EvaluationBroker(CountingObjective(), recorder=recorder)
        broker.evaluate_batch(np.array([[0.1, 0.2]]))
        recorder.mark_initial()
        broker.evaluate_batch(np.array([[0.3, 0.4]]))
        result = recorder.finalize(
            total_seconds=1.0, eval_seconds=broker.stats.eval_seconds
        )
        assert result.n_evaluations == 2
        assert result.n_init == 1
        assert result.method == "T"
        assert result.eval_seconds + result.overhead_seconds == pytest.approx(
            result.total_seconds
        )

    def test_recorder_mismatched_lengths(self):
        with pytest.raises(ValueError):
            RunRecorder().extend(np.zeros((2, 2)), np.zeros(3))

    def test_runresult_total_is_derived(self):
        split = RunResult(
            X=np.zeros((1, 2)),
            y=np.zeros(1),
            n_init=1,
            eval_seconds=1.5,
            overhead_seconds=0.5,
        )
        assert split.total_seconds == pytest.approx(2.0)
        with pytest.raises(TypeError):
            RunResult(
                X=np.zeros((1, 2)), y=np.zeros(1), n_init=1, runtime_seconds=2.0
            )


class TestFaultInjection:
    def test_deterministic_per_point(self):
        inner = FunctionObjective(bowl, dim=2, cache_key="b")
        plan = FaultPlan(failure_rate=1.0, max_faults_per_point=3, seed=7)
        a, b = (FaultInjectingObjective(inner, plan) for _ in range(2))
        x = np.array([[0.3, 0.4]])
        outcomes = []
        for wrapped in (a, b):
            attempts = []
            for _ in range(5):
                try:
                    attempts.append(float(wrapped.evaluate(x)[0]))
                except TransientSimulationError:
                    attempts.append("fault")
            outcomes.append(attempts)
        assert outcomes[0] == outcomes[1]  # same seed, same schedule
        assert "fault" in outcomes[0]
        assert outcomes[0][-1] == pytest.approx(0.25)  # eventually clean

    def test_transparent_identity(self):
        inner = FunctionObjective(bowl, dim=2, cache_key="b")
        wrapped = FaultInjectingObjective(inner, FaultPlan(failure_rate=0.0))
        assert wrapped.cache_key == inner.cache_key
        assert wrapped.dim == inner.dim
        assert np.array_equal(wrapped.bounds, inner.bounds) or (
            wrapped.bounds is None and inner.bounds is None
        )

    def test_testbench_wrapper_delegates(self):
        from repro.circuits.behavioral.uvlo import UVLOTestbench

        tb = FaultInjectingTestbench(UVLOTestbench(), FaultPlan(failure_rate=0.0))
        assert tb.dim == 19
        obj = tb.objective("delta_vthl")
        assert obj.cache_key == "UVLOTestbench:delta_vthl"
        assert obj is tb.objective("delta_vthl")  # cached wrapper

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(nan_fraction=0.8, hang_fraction=0.5)
        with pytest.raises(ValueError):
            FaultPlan(max_faults_per_point=0)
