"""Replay-verifier tests: the dynamic proof behind the NL7xx static rules.

The acceptance scenario: a fault-injected UVLO campaign is killed
mid-run, resumed append-in-place from its ledger, and the combined ledger
then replays with zero divergence through the *clean* objective — warm
(cache preload, the resume path) and cold (full re-execution, bitwise
float comparison).  Plus the failure modes: value tampering is caught,
wrong-objective replay is an operator error, and the torn line a kill
leaves behind is healed so the appended ledger stays readable.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bo.engine import RunSpec
from repro.bo.rembo import RemboBO
from repro.circuits.behavioral.uvlo import UVLOTestbench
from repro.runtime import (
    BrokerConfig,
    FaultInjectingTestbench,
    FaultPlan,
    FunctionObjective,
    RunLedger,
    RuntimePolicy,
    read_ledger,
    resume,
    truncate_mid_run,
    verify_replay,
)

SRC = Path(__file__).resolve().parent.parent / "src"


def small_engine(seed=11):
    return RemboBO(
        batch_size=4,
        embedding_dim=3,
        tune_every=1,
        n_restarts=1,
        seed=seed,
    )


def faulty_bench():
    return FaultInjectingTestbench(
        UVLOTestbench(),
        FaultPlan(failure_rate=0.3, nan_fraction=0.4, seed=5),
    )


def run_campaign(testbench, runtime, seed=11):
    bench = UVLOTestbench()
    return small_engine(seed=seed).solve(
        objective=testbench.objective("delta_vthl"),
        spec=RunSpec(
            bounds=bench.bounds(),
            n_init=6,
            n_batches=2,
            threshold=bench.threshold("delta_vthl"),
        ),
        policy=runtime,
    )


RETRY = BrokerConfig(max_retries=3, backoff_seconds=0.0)


class TestKillResumeReplay:
    def test_resumed_fault_injected_ledger_replays_clean(self, tmp_path):
        ledger_path = tmp_path / "campaign.jsonl"

        # 1. fault-injected campaign, killed mid-run
        policy = RuntimePolicy(config=RETRY, ledger=RunLedger(ledger_path))
        run_campaign(faulty_bench(), policy)
        policy.ledger.close()
        n_total = read_ledger(ledger_path).n_completed
        n_kept = truncate_mid_run(ledger_path)
        assert 0 < n_kept < n_total

        # 2. resume append-in-place (same file), fresh fault wrapper
        state = resume(ledger_path)
        assert state.truncated and state.n_completed == n_kept
        run_campaign(faulty_bench(), state.policy(config=RETRY))

        # 3. the combined ledger replays with zero divergence through the
        # clean objective: injected faults were transient, retried, and
        # never recorded
        clean = UVLOTestbench().objective("delta_vthl")
        report = verify_replay(ledger_path, clean, mode="both", config=RETRY)
        assert report.zero_divergence, report.summary()
        assert report.n_completed == n_total
        assert report.n_checked > 0
        assert report.divergences == []

    def test_warm_and_cold_modes_run_independently(self, tmp_path):
        ledger_path = tmp_path / "campaign.jsonl"
        policy = RuntimePolicy(config=RETRY, ledger=RunLedger(ledger_path))
        run_campaign(UVLOTestbench(), policy)
        policy.ledger.close()
        clean = UVLOTestbench().objective("delta_vthl")
        warm = verify_replay(ledger_path, clean, mode="warm")
        cold = verify_replay(ledger_path, clean, mode="cold", config=RETRY)
        assert warm.zero_divergence and cold.zero_divergence
        assert warm.n_completed == cold.n_completed
        # cold re-executes, so it checks at least the unique points twice
        # over (digest stability + value); both modes checked something
        assert warm.n_checked > 0 and cold.n_checked > 0

    def test_tampered_value_is_caught(self, tmp_path):
        ledger_path = tmp_path / "campaign.jsonl"
        policy = RuntimePolicy(config=RETRY, ledger=RunLedger(ledger_path))
        run_campaign(UVLOTestbench(), policy)
        policy.ledger.close()

        lines = ledger_path.read_text(encoding="utf-8").splitlines()
        for i, line in enumerate(lines):
            event = json.loads(line)
            if event.get("event") == "completed":
                event["y"] = event["y"] + 1.0
                lines[i] = json.dumps(event)
                break
        ledger_path.write_text("\n".join(lines) + "\n", encoding="utf-8")

        clean = UVLOTestbench().objective("delta_vthl")
        report = verify_replay(ledger_path, clean, mode="both", config=RETRY)
        assert not report.zero_divergence
        kinds = {d.kind for d in report.divergences}
        assert "value" in kinds
        assert report.first_divergence is not None
        assert "value" in report.first_divergence.render()

    def test_wrong_objective_is_operator_error(self, tmp_path):
        ledger_path = tmp_path / "campaign.jsonl"
        policy = RuntimePolicy(config=RETRY, ledger=RunLedger(ledger_path))
        run_campaign(UVLOTestbench(), policy)
        policy.ledger.close()
        dim = UVLOTestbench().dim
        other = FunctionObjective(
            lambda x: 0.0, dim=dim, cache_key="some-other-campaign"
        )
        with pytest.raises(ValueError, match="cache_key"):
            verify_replay(ledger_path, other)


class TestTornTailHealing:
    def test_resume_heals_torn_line_in_place(self, tmp_path):
        ledger_path = tmp_path / "campaign.jsonl"
        policy = RuntimePolicy(config=RETRY, ledger=RunLedger(ledger_path))
        run_campaign(UVLOTestbench(), policy)
        policy.ledger.close()
        truncate_mid_run(ledger_path)
        raw = ledger_path.read_text(encoding="utf-8")
        assert not raw.splitlines()[-1].startswith("{\"event\": ")

        state = resume(ledger_path)
        assert state.truncated
        # the fragment is gone: every remaining line parses
        for line in ledger_path.read_text(encoding="utf-8").splitlines():
            json.loads(line)
        # so an appended resume leaves a ledger read_ledger still accepts
        run_campaign(UVLOTestbench(), state.policy(config=RETRY))
        final = read_ledger(ledger_path)
        assert not final.truncated


class TestReplayCli:
    def _run(self, *argv: str):
        return subprocess.run(
            [sys.executable, "-m", "repro.runtime.replay", *argv],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )

    def test_selftest_exits_zero(self, tmp_path):
        proc = self._run("--selftest", "--workdir", str(tmp_path))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "ZERO DIVERGENCE" in proc.stdout

    def test_ledger_argument_verifies_uvlo_run(self, tmp_path):
        ledger_path = tmp_path / "campaign.jsonl"
        policy = RuntimePolicy(config=RETRY, ledger=RunLedger(ledger_path))
        run_campaign(UVLOTestbench(), policy)
        policy.ledger.close()
        proc = self._run(
            str(ledger_path), "--testbench", "uvlo",
            "--measure", "delta_vthl", "--mode", "warm",
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_usage_error_without_ledger_or_selftest(self):
        proc = self._run()
        assert proc.returncode == 2
