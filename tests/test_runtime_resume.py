"""Campaign-level runtime tests: fault tolerance, checkpoint/resume, dedup.

These exercise the acceptance criteria of the evaluation runtime on the
UVLO testbench:

* a seeded campaign under a 30% injected transient-failure rate completes
  with exactly the ``X``/``y`` of the fault-free run;
* a campaign killed mid-batch resumes from its ledger to a bitwise-identical
  :class:`RunResult` without re-simulating completed points;
* methods sharing an initial design through one :class:`RuntimePolicy`
  perform zero duplicate simulations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bo.engine import RunSpec
from repro.bo.rembo import RemboBO
from repro.circuits.behavioral.uvlo import UVLOTestbench
from repro.experiments.config import ExperimentConfig
from repro.experiments.methods import run_method, shared_initial_data
from repro.runtime import (
    BrokerConfig,
    FaultInjectingTestbench,
    FaultPlan,
    RunLedger,
    RuntimePolicy,
    read_ledger,
    resume,
)


def small_engine(seed=11):
    return RemboBO(
        batch_size=4,
        embedding_dim=3,
        tune_every=1,
        n_restarts=1,
        seed=seed,
    )


def run_campaign(testbench, runtime=None, seed=11):
    return small_engine(seed=seed).solve(
        objective=testbench.objective("delta_vthl"),
        spec=RunSpec(
            bounds=testbench.bounds(),
            n_init=6,
            n_batches=2,
            threshold=testbench.threshold("delta_vthl"),
        ),
        policy=runtime,
    )


class TestFaultToleratedCampaign:
    def test_transient_faults_leave_results_identical(self):
        clean = run_campaign(UVLOTestbench())
        faulty_bench = FaultInjectingTestbench(
            UVLOTestbench(),
            FaultPlan(failure_rate=0.3, nan_fraction=0.4, seed=5),
        )
        runtime = RuntimePolicy(
            config=BrokerConfig(max_retries=3, backoff_seconds=0.0)
        )
        faulty = run_campaign(faulty_bench, runtime=runtime)
        assert np.array_equal(clean.X, faulty.X)
        assert np.array_equal(clean.y, faulty.y)
        assert clean.n_init == faulty.n_init

    def test_faults_were_actually_injected(self):
        faulty_bench = FaultInjectingTestbench(
            UVLOTestbench(),
            FaultPlan(failure_rate=0.3, nan_fraction=0.4, seed=5),
        )
        runtime = RuntimePolicy(
            config=BrokerConfig(max_retries=3, backoff_seconds=0.0)
        )
        obj = faulty_bench.objective("delta_vthl")
        from repro.runtime import EvaluationBroker

        broker = EvaluationBroker(obj, runtime.config)
        rng = np.random.default_rng(0)
        broker.evaluate_batch(rng.uniform(-1, 1, (30, obj.dim)))
        assert broker.stats.n_attempt_failures > 0  # the plan does fire


class TestKillAndResume:
    def _truncate_mid_batch(self, path):
        """Cut the ledger after roughly half its completed events, plus the
        torn line a kill mid-write leaves behind."""
        lines = path.read_text(encoding="utf-8").splitlines()
        completed_seen = 0
        total_completed = sum(1 for li in lines if '"event":"completed"' in li)
        keep = []
        for line in lines:
            keep.append(line)
            if '"event":"completed"' in line:
                completed_seen += 1
                if completed_seen >= total_completed // 2:
                    break
        path.write_text(
            "\n".join(keep) + "\n" + '{"event":"compl', encoding="utf-8"
        )
        return completed_seen

    def test_resume_reproduces_uninterrupted_run(self, tmp_path):
        ledger_path = tmp_path / "campaign.jsonl"
        policy = RuntimePolicy(ledger=RunLedger(ledger_path))
        uninterrupted = run_campaign(UVLOTestbench(), runtime=policy)
        policy.ledger.close()
        n_simulated = read_ledger(ledger_path).n_completed

        n_kept = self._truncate_mid_batch(ledger_path)
        assert 0 < n_kept < n_simulated

        state = resume(ledger_path)
        assert state.truncated
        assert state.n_completed == n_kept

        resumed_ledger = tmp_path / "resumed.jsonl"
        resumed_policy = RuntimePolicy(
            cache=state.cache, ledger=RunLedger(resumed_ledger)
        )
        resumed = run_campaign(UVLOTestbench(), runtime=resumed_policy)
        resumed_policy.ledger.close()

        # bitwise identical evaluation log
        assert np.array_equal(uninterrupted.X, resumed.X)
        assert np.array_equal(uninterrupted.y, resumed.y)
        assert np.array_equal(uninterrupted.Z, resumed.Z)
        assert uninterrupted.n_init == resumed.n_init

        # completed evaluations were served from the checkpoint, not re-run
        replay = read_ledger(resumed_ledger)
        assert replay.n_cache_hits >= n_kept
        assert replay.n_completed == n_simulated - n_kept

    def test_resume_rejects_mismatched_decimals(self, tmp_path):
        ledger_path = tmp_path / "campaign.jsonl"
        policy = RuntimePolicy(ledger=RunLedger(ledger_path))
        run_campaign(UVLOTestbench(), runtime=policy)
        policy.ledger.close()
        with pytest.raises(ValueError, match="cache_decimals"):
            resume(ledger_path, decimals=6)

    def test_resume_policy_appends_by_default(self, tmp_path):
        ledger_path = tmp_path / "campaign.jsonl"
        policy = RuntimePolicy(ledger=RunLedger(ledger_path))
        run_campaign(UVLOTestbench(), runtime=policy)
        policy.ledger.close()
        state = resume(ledger_path)
        appended = state.policy()
        assert appended.cache is state.cache
        assert appended.ledger.path == ledger_path
        assert state.policy(append_ledger=False).ledger is None


class TestSharedRuntimeDedup:
    def test_methods_sharing_initial_design_never_resimulate(self, tmp_path):
        cfg = ExperimentConfig(
            n_init=4,
            n_sequential=2,
            batch_size=3,
            n_batches=1,
            mc_samples=20,
            sss_samples_per_scale=10,
            embedding_dim=3,
            tune_every_sequential=1,
            seed=3,
        )
        tb = UVLOTestbench()
        runtime = RuntimePolicy.shared(ledger_path=tmp_path / "shared.jsonl")

        for method in ("EI", "LCB"):
            result = run_method(method, tb, "delta_vthl", cfg, runtime=runtime)
            assert result.n_evaluations == cfg.bo_budget
        runtime.ledger.close()

        replay = read_ledger(tmp_path / "shared.jsonl")
        # the acceptance criterion: zero duplicate simulations across
        # methods sharing an initial design
        assert replay.duplicate_simulations == 0
        # the second method's initial design came entirely from the cache
        assert replay.n_cache_hits >= cfg.n_init

    def test_shared_initial_data_warms_shared_cache(self):
        cfg = ExperimentConfig(
            n_init=5,
            n_sequential=1,
            batch_size=2,
            n_batches=1,
            mc_samples=20,
            sss_samples_per_scale=10,
            seed=3,
        )
        tb = UVLOTestbench()
        runtime = RuntimePolicy.shared()
        X0, y0 = shared_initial_data(tb, "delta_vthl", cfg, runtime=runtime)
        assert X0.shape == (5, tb.dim)
        before = runtime.cache.stats["size"]
        X1, y1 = shared_initial_data(tb, "delta_vthl", cfg, runtime=runtime)
        assert runtime.cache.stats["size"] == before  # nothing re-simulated
        assert np.array_equal(y0, y1)
