"""Tests for the sampling baselines: MC, designs, SSS, blockade."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bo import RunSpec
from repro.runtime import FunctionObjective
from repro.sampling import (
    LogisticClassifier,
    MonteCarloSampler,
    ScaledSigmaSampler,
    StatisticalBlockade,
    halton,
    latin_hypercube,
)
from repro.utils.validation import unit_cube_bounds


def bowl(x):
    return float(np.sum(np.asarray(x) ** 2))


def wrap(fn, dim):
    return FunctionObjective(fn, dim=dim, bounds=unit_cube_bounds(dim))


def bowl_objective(dim):
    return wrap(bowl, dim)


class TestMonteCarloSampler:
    def test_budget_and_bounds(self, rng):
        sampler = MonteCarloSampler(200, seed=0)
        result = sampler.solve(objective=bowl_objective(3))
        assert result.n_evaluations == 200
        assert np.all(np.abs(result.X) <= 1.0)

    def test_method_label(self):
        result = MonteCarloSampler(10, seed=0).solve(objective=bowl_objective(2))
        assert result.method == "MC"

    def test_stop_on_failure(self):
        sampler = MonteCarloSampler(10_000, stop_on_failure=True, seed=1)
        result = sampler.solve(
            objective=bowl_objective(2), spec=RunSpec(threshold=0.5)
        )
        assert result.n_evaluations < 10_000
        assert result.y[-1] < 0.5

    def test_reproducible(self):
        a = MonteCarloSampler(50, seed=3).solve(objective=bowl_objective(2))
        b = MonteCarloSampler(50, seed=3).solve(objective=bowl_objective(2))
        np.testing.assert_array_equal(a.X, b.X)

    def test_run_wrapper_removed(self):
        # the deprecated positional run() entry point is gone; solve()
        # and the Campaign facade are the only ways in
        assert not hasattr(MonteCarloSampler(10, seed=0), "run")

    def test_rejects_zero_budget(self):
        with pytest.raises(ValueError):
            MonteCarloSampler(0)


class TestLatinHypercube:
    def test_stratification_property(self):
        """Each dimension has exactly one point per stratum."""
        n = 20
        X = latin_hypercube(n, unit_cube_bounds(3), seed=0)
        for k in range(3):
            strata = np.floor((X[:, k] + 1.0) / 2.0 * n).astype(int)
            strata = np.clip(strata, 0, n - 1)
            assert len(set(strata)) == n

    def test_bounds_respected(self):
        bounds = np.array([[2.0, 3.0], [-5.0, 5.0]])
        X = latin_hypercube(50, bounds, seed=1)
        assert np.all(X[:, 0] >= 2.0) and np.all(X[:, 0] <= 3.0)
        assert np.all(X[:, 1] >= -5.0) and np.all(X[:, 1] <= 5.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            latin_hypercube(0, unit_cube_bounds(2))


class TestHalton:
    def test_low_discrepancy_beats_nothing(self):
        X = halton(100, unit_cube_bounds(2))
        # points fill the box: each quadrant gets a fair share
        quadrant = (X[:, 0] > 0).astype(int) * 2 + (X[:, 1] > 0).astype(int)
        counts = np.bincount(quadrant, minlength=4)
        assert counts.min() >= 15

    def test_deterministic(self):
        np.testing.assert_array_equal(
            halton(10, unit_cube_bounds(3)), halton(10, unit_cube_bounds(3))
        )

    def test_distinct_points(self):
        X = halton(50, unit_cube_bounds(2))
        assert len(np.unique(X, axis=0)) == 50


class TestScaledSigmaSampler:
    def test_total_budget(self):
        sampler = ScaledSigmaSampler(50, scales=(1.0, 2.0, 3.0), seed=0)
        assert sampler.n_samples == 150
        result = sampler.solve(objective=bowl_objective(4))
        assert result.n_evaluations == 150

    def test_samples_clipped_into_box(self):
        sampler = ScaledSigmaSampler(100, scales=(4.0,), seed=1)
        result = sampler.solve(objective=bowl_objective(3))
        assert np.all(np.abs(result.X) <= 1.0)

    def test_larger_scales_reach_further(self):
        near = ScaledSigmaSampler(300, scales=(0.5,), seed=2).solve(
            objective=bowl_objective(5)
        )
        far = ScaledSigmaSampler(300, scales=(4.0,), seed=2).solve(
            objective=bowl_objective(5)
        )
        assert np.abs(far.X).mean() > np.abs(near.X).mean()

    def test_model_fit_on_detectable_failures(self):
        """With a common failure region the SSS model fits and extrapolates."""

        def radius(x):
            return -float(np.linalg.norm(x))  # failure = large radius

        sampler = ScaledSigmaSampler(
            400, scales=(1.0, 1.5, 2.0, 3.0, 4.0), seed=3
        )
        result = sampler.solve(
            objective=wrap(radius, 4), spec=RunSpec(threshold=-1.2)
        )
        assert "sss_fit" in result.extra
        fit = result.extra["sss_fit"]
        # failure fraction grows with scale
        fractions = result.extra["failure_fractions"]
        assert fractions[-1] > fractions[0]
        assert 0.0 <= fit.failure_rate(1.0) <= 1.0

    def test_no_fit_when_failures_too_rare(self):
        result = ScaledSigmaSampler(20, scales=(1.0, 2.0), seed=4).solve(
            objective=bowl_objective(3), spec=RunSpec(threshold=-1.0)
        )
        assert "sss_fit" not in result.extra

    def test_run_wrapper_removed(self):
        assert not hasattr(ScaledSigmaSampler(10, scales=(1.0,), seed=0), "run")

    def test_validation(self):
        with pytest.raises(ValueError):
            ScaledSigmaSampler(0)
        with pytest.raises(ValueError):
            ScaledSigmaSampler(10, scales=())
        with pytest.raises(ValueError):
            ScaledSigmaSampler(10, sigma_fraction=0.0)


class TestLogisticClassifier:
    def test_separates_linear_labels(self, rng):
        X = rng.uniform(-1, 1, (200, 2))
        labels = (X[:, 0] + X[:, 1] > 0).astype(float)
        clf = LogisticClassifier().fit(X, labels)
        proba = clf.predict_proba(X)
        accuracy = np.mean((proba > 0.5) == labels.astype(bool))
        assert accuracy > 0.95

    def test_rejects_non_binary(self, rng):
        with pytest.raises(ValueError):
            LogisticClassifier().fit(rng.uniform(size=(5, 2)), [0, 1, 2, 0, 1])

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LogisticClassifier().predict_proba(np.zeros((1, 2)))


class TestStatisticalBlockade:
    def test_blocks_most_candidates(self):
        """On a smooth objective the classifier blocks the bulk."""
        blockade = StatisticalBlockade(
            pilot_samples=150, candidate_samples=1000, seed=0
        )
        result = blockade.solve(
            objective=bowl_objective(3), spec=RunSpec(threshold=-1.0)
        )
        diag = result.extra["blockade"]
        assert diag.n_unblocked < 1000
        assert result.n_evaluations == 150 + diag.n_unblocked

    def test_unblocked_points_are_tail_biased(self):
        def linear(x):
            return float(np.sum(x))  # tail = all-negative corner

        blockade = StatisticalBlockade(
            pilot_samples=200, candidate_samples=1500, seed=1
        )
        result = blockade.solve(objective=wrap(linear, 4))
        pilot_mean = result.y[:200].mean()
        if result.n_evaluations > 200:
            unblocked_mean = result.y[200:].mean()
            assert unblocked_mean < pilot_mean

    def test_run_wrapper_removed(self):
        blockade = StatisticalBlockade(
            pilot_samples=20, candidate_samples=50, seed=0
        )
        assert not hasattr(blockade, "run")

    def test_validation(self):
        with pytest.raises(ValueError):
            StatisticalBlockade(pilot_samples=5)
        with pytest.raises(ValueError):
            StatisticalBlockade(tail_quantile=0.5, margin_quantile=0.1)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(2, 40), seed=st.integers(0, 2**31 - 1))
def test_property_lhs_marginals_uniformish(n, seed):
    """Every LHS marginal has one point in each of the n equal strata."""
    X = latin_hypercube(n, unit_cube_bounds(2), seed=seed)
    for k in range(2):
        strata = np.clip(np.floor((X[:, k] + 1.0) / 2.0 * n).astype(int), 0, n - 1)
        assert sorted(strata) == list(range(n))
