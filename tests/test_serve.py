"""Tests for the ``repro.serve`` campaign service layer.

Covers the service contract end to end: spec validation, the persistent
cache factories (shard round-trip, torn lines, LRU eviction, metrics),
N≥4 concurrent campaigns over one shared cache with zero lost ledger
events and zero duplicate simulations, and kill + ``--resume`` bitwise
reproduction — both in-process (truncated ledgers) and with a real
SIGKILL of a ``python -m repro.serve`` subprocess.

CI runs this file bare and under ``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.bo.engine import RunSpec
from repro.campaign import Campaign, CampaignSpec, run_campaign_spec
from repro.runtime.broker import BrokerConfig, RuntimePolicy
from repro.runtime.cache import ResultCache
from repro.runtime.faults import DelayObjective
from repro.runtime.ledger import read_ledger
from repro.runtime.objective import FunctionObjective
from repro.runtime.replay import truncate_mid_run, verify_replay
from repro.sampling.monte_carlo import MonteCarloSampler
from repro.serve import CampaignScheduler, build_spec, load_jobs
from repro.telemetry.metrics import MetricsRegistry


def bowl_objective(dim: int = 2) -> FunctionObjective:
    return FunctionObjective(
        lambda X: np.sum(X**2, axis=1),
        dim=dim,
        vectorized=True,
        cache_key=f"bowl[d={dim}]",
    )


# -- CampaignSpec -------------------------------------------------------------


class TestCampaignSpec:
    def test_requires_objective(self):
        with pytest.raises(TypeError, match="FunctionObjective"):
            CampaignSpec(objective=42, engine=MonteCarloSampler(3, seed=0))

    def test_rejects_non_engine_non_factory(self):
        with pytest.raises(TypeError, match="solve"):
            CampaignSpec(objective=bowl_objective(), engine=object())

    def test_rejects_bad_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            CampaignSpec(
                objective=bowl_objective(),
                engine=MonteCarloSampler(3, seed=0),
                name="",
            )
        with pytest.raises(ValueError, match="filesystem-safe"):
            CampaignSpec(
                objective=bowl_objective(),
                engine=MonteCarloSampler(3, seed=0),
                name="a/b",
            )

    def test_rejects_bool_priority(self):
        with pytest.raises(TypeError, match="priority"):
            CampaignSpec(
                objective=bowl_objective(),
                engine=MonteCarloSampler(3, seed=0),
                priority=True,
            )

    def test_factory_makes_fresh_engines(self):
        spec = CampaignSpec(
            objective=bowl_objective(),
            engine=lambda: MonteCarloSampler(3, seed=0),
        )
        assert spec.make_engine() is not spec.make_engine()

    def test_factory_returning_junk_raises(self):
        spec = CampaignSpec(
            objective=bowl_objective(), engine=lambda: "nope"
        )
        with pytest.raises(TypeError, match="factory"):
            spec.make_engine()

    def test_campaign_is_thin_wrapper(self):
        engine = MonteCarloSampler(5, seed=0)
        campaign = Campaign(bowl_objective(), engine, seed=3)
        assert isinstance(campaign.spec, CampaignSpec)
        assert campaign.engine is engine
        assert campaign.seed == 3
        outcome = campaign.run(
            bounds=np.array([[-1.0, 1.0]] * 2), threshold=0.0
        )
        assert outcome.name == "campaign"
        assert outcome.run.n_evaluations == 5

    def test_one_spec_drives_both_paths(self):
        spec = CampaignSpec(
            objective=bowl_objective(),
            engine=lambda: MonteCarloSampler(5, seed=0),
            run_spec=RunSpec(
                bounds=np.array([[-1.0, 1.0]] * 2), threshold=0.0
            ),
            seed=3,
            name="shared",
        )
        direct = run_campaign_spec(spec)
        again = run_campaign_spec(spec)
        np.testing.assert_array_equal(direct.run.X, again.run.X)
        np.testing.assert_array_equal(direct.run.y, again.run.y)
        assert direct.name == "shared"


# -- persistent ResultCache ---------------------------------------------------


class TestPersistentCache:
    def test_open_round_trip(self, tmp_path):
        store = tmp_path / "cache"
        with ResultCache.open(store) as cache:
            cache.put("aa11", 1.5)
            cache.put("bb22", -2.5)
        with ResultCache.open(store) as reloaded:
            assert reloaded.persistent
            assert len(reloaded) == 2
            assert reloaded.get("aa11") == 1.5
            assert reloaded.get("bb22") == -2.5

    def test_values_round_trip_bitwise(self, tmp_path):
        value = float(np.nextafter(0.1, 1.0))
        with ResultCache.open(tmp_path / "c") as cache:
            cache.put("dd", value)
        with ResultCache.open(tmp_path / "c") as reloaded:
            assert reloaded.get("dd") == value

    def test_decimals_mismatch_rejected(self, tmp_path):
        with ResultCache.open(tmp_path / "c", decimals=6):
            pass
        with pytest.raises(ValueError, match="decimals"):
            ResultCache.open(tmp_path / "c", decimals=8)
        # None adopts the stored rounding
        with ResultCache.open(tmp_path / "c") as cache:
            assert cache.decimals == 6

    def test_torn_final_shard_line_tolerated(self, tmp_path):
        with ResultCache.open(tmp_path / "c") as cache:
            cache.put("aa", 1.0)
            [shard] = (tmp_path / "c").glob("shard-*.jsonl")
        with shard.open("a", encoding="utf-8") as fh:
            fh.write('{"d": "tor')
        with ResultCache.open(tmp_path / "c") as cache:
            assert cache.get("aa") == 1.0
            assert len(cache) == 1

    def test_mid_file_garbage_raises(self, tmp_path):
        with ResultCache.open(tmp_path / "c") as cache:
            cache.put("aa", 1.0)
            [shard] = (tmp_path / "c").glob("shard-*.jsonl")
        shard.write_text('garbage\n{"d":"aa","y":1.0}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt"):
            ResultCache.open(tmp_path / "c")

    def test_lru_eviction(self):
        cache = ResultCache.in_memory(max_entries=3)
        for i in range(3):
            cache.put(f"d{i}", float(i))
        cache.get("d0")  # touch: d1 becomes the eviction candidate
        cache.put("d3", 3.0)
        assert cache.evictions == 1
        assert cache.get("d1") is None
        assert cache.get("d0") == 0.0
        assert cache.get("d3") == 3.0
        assert cache.stats["size"] == 3

    def test_persistent_eviction_is_memory_only(self, tmp_path):
        with ResultCache.open(tmp_path / "c", max_entries=2) as cache:
            for i in range(4):
                cache.put(f"d{i}", float(i))
            assert len(cache) == 2
            assert cache.evictions == 2
        # reload honors the bound too (append-only shards keep everything,
        # the newest max_entries win)
        with ResultCache.open(tmp_path / "c", max_entries=2) as cache:
            assert len(cache) == 2
        with ResultCache.open(tmp_path / "c") as unbounded:
            assert len(unbounded) == 4

    def test_metrics_binding(self):
        registry = MetricsRegistry()
        cache = ResultCache.in_memory(max_entries=1)
        cache.bind_metrics(registry)
        cache.put("a", 1.0)
        cache.get("a")
        cache.get("missing")
        cache.put("b", 2.0)  # evicts "a"
        snap = registry.snapshot()
        assert snap["counters"]["result_cache.hits"] == 1
        assert snap["counters"]["result_cache.misses"] == 1
        assert snap["counters"]["result_cache.evictions"] == 1
        assert snap["gauges"]["result_cache.size"] == 1

    def test_bare_constructor_warns(self):
        with pytest.warns(DeprecationWarning, match="in_memory"):
            ResultCache()

    def test_factories_do_not_warn(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ResultCache.in_memory()
            ResultCache.open(tmp_path / "c").close()


# -- job files ----------------------------------------------------------------


class TestJobs:
    def _payload(self, **over):
        payload = {
            "name": "j",
            "seed": 5,
            "testbench": "uvlo",
            "measure": "delta_vthl",
            "engine": {"kind": "monte-carlo", "n_samples": 4},
            "run": {"threshold": "auto"},
        }
        payload.update(over)
        return payload

    def test_build_spec_resolves_threshold(self):
        spec = build_spec(self._payload())
        assert spec.run_spec.threshold is not None
        assert spec.run_spec.bounds is not None
        assert spec.name == "j"

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown job keys"):
            build_spec(self._payload(bogus=1))
        with pytest.raises(ValueError, match="unknown run keys"):
            build_spec(self._payload(run={"bogus": 1}))

    def test_unknown_engine_kind_rejected(self):
        with pytest.raises(ValueError, match="engine.kind"):
            build_spec(self._payload(engine={"kind": "gradient-descent"}))

    def test_load_jobs_directory_sorted(self, tmp_path):
        for name in ("b.json", "a.json"):
            (tmp_path / name).write_text(
                json.dumps(self._payload(name=name.split(".")[0])),
                encoding="utf-8",
            )
        specs = load_jobs([tmp_path])
        assert [s.name for s in specs] == ["a", "b"]

    def test_eval_delay_wraps_objective(self):
        spec = build_spec(self._payload(eval_delay_seconds=0.01))
        assert isinstance(spec.objective, DelayObjective)


# -- the scheduler ------------------------------------------------------------


def _mc_spec(name: str, seed: int, n: int = 12, priority: int = 0) -> CampaignSpec:
    """A tiny deterministic campaign; equal seeds → identical designs."""
    obj = bowl_objective(dim=3)
    return CampaignSpec(
        objective=obj,
        engine=lambda: MonteCarloSampler(n, seed=seed),
        run_spec=RunSpec(
            bounds=np.array([[-1.0, 1.0]] * 3), threshold=0.0
        ),
        seed=seed,
        name=name,
        priority=priority,
    )


def _final_run_observations(ledger_path: Path) -> int:
    events = read_ledger(ledger_path).events
    last_header = max(
        (i for i, e in enumerate(events) if e.get("event") == "campaign"),
        default=0,
    )
    return sum(
        1
        for e in events[last_header:]
        if e.get("event") in ("completed", "cache_hit", "penalized")
    )


class TestSchedulerConcurrent:
    def test_four_campaigns_share_one_persistent_cache(self, tmp_path):
        runs = tmp_path / "runs"
        specs = [
            _mc_spec("c1", seed=1, priority=3),
            _mc_spec("c2", seed=1, priority=2),
            _mc_spec("c3", seed=2, priority=1),
            _mc_spec("c4", seed=2, priority=0),
        ]
        with CampaignScheduler(runs, max_concurrent=4) as scheduler:
            scheduler.submit_all(specs)
            result = scheduler.run()

        assert result.n_failed == 0
        assert len(result.outcomes) == 4
        # zero lost ledger events: every observation the engine consumed
        # is in its campaign's ledger
        for outcome in result.outcomes:
            assert outcome.ok
            n = _final_run_observations(outcome.ledger_path)
            assert n == outcome.result.run.n_evaluations == 12
        # campaigns sharing designs never both simulated a point
        assert result.duplicate_simulations == 0
        # exactly one simulation per unique design across the fleet
        total_completed = sum(
            read_ledger(o.ledger_path).n_completed for o in result.outcomes
        )
        assert total_completed == 24  # 2 unique seeds x 12 points
        assert result.cache_stats["size"] == 24
        assert result.cache_stats["hits"] >= 24
        # queue/latency telemetry flowed into the shared registry
        assert result.metrics["counters"]["scheduler.campaigns_completed"] == 4
        assert (
            result.metrics["histograms"]["scheduler.queue_wait_seconds"]["count"]
            == 4
        )

    def test_duplicate_names_rejected(self, tmp_path):
        with CampaignScheduler(tmp_path / "runs") as scheduler:
            scheduler.submit(_mc_spec("same", seed=1))
            with pytest.raises(ValueError, match="already submitted"):
                scheduler.submit(_mc_spec("same", seed=2))

    def test_failing_campaign_does_not_sink_the_fleet(self, tmp_path):
        bad = CampaignSpec(
            objective=bowl_objective(dim=3),
            engine=lambda: (_ for _ in ()).throw(RuntimeError("boom")),
            name="bad",
        )
        with CampaignScheduler(tmp_path / "runs") as scheduler:
            scheduler.submit(bad)
            scheduler.submit(_mc_spec("good", seed=1))
            result = scheduler.run()
        by_name = {o.name: o for o in result.outcomes}
        assert not by_name["bad"].ok and "boom" in by_name["bad"].error
        assert by_name["good"].ok
        assert result.n_failed == 1

    def test_persistent_cache_survives_scheduler_restart(self, tmp_path):
        runs = tmp_path / "runs"
        with CampaignScheduler(runs) as scheduler:
            scheduler.submit(_mc_spec("first", seed=1))
            first = scheduler.run()
        assert first.cache_stats["misses"] == 12
        # a later scheduler over the same directory reuses the store:
        # an identical campaign is served entirely from disk
        with CampaignScheduler(runs) as scheduler:
            scheduler.submit(_mc_spec("second", seed=1))
            second = scheduler.run()
        assert second.n_failed == 0
        assert second.cache_stats["misses"] == 0
        assert read_ledger(runs / "second.jsonl").n_completed == 0


class TestSchedulerResume:
    def _run_fleet(self, runs: Path, resume: bool = False):
        specs = [
            _mc_spec("r1", seed=1),
            _mc_spec("r2", seed=1),
            _mc_spec("r3", seed=2),
            _mc_spec("r4", seed=3),
        ]
        with CampaignScheduler(runs, max_concurrent=2, resume=resume) as sched:
            sched.submit_all(specs)
            return sched.run()

    def test_truncated_ledgers_resume_bitwise(self, tmp_path):
        baseline = self._run_fleet(tmp_path / "baseline")
        assert baseline.n_failed == 0

        killed_dir = tmp_path / "killed"
        first = self._run_fleet(killed_dir)
        assert first.n_failed == 0
        # simulate a mid-flight SIGKILL: partial ledgers with torn final
        # lines, no completion certificates, cache lost entirely
        for name in ("r1", "r2", "r3", "r4"):
            truncate_mid_run(killed_dir / f"{name}.jsonl")
            (killed_dir / f"{name}.result.json").unlink()
        for shard in (killed_dir / "cache").glob("shard-*.jsonl"):
            shard.unlink()

        resumed = self._run_fleet(killed_dir, resume=True)
        assert resumed.n_failed == 0
        assert all(o.resumed for o in resumed.outcomes)
        assert resumed.duplicate_simulations == 0
        for name in ("r1", "r2", "r3", "r4"):
            base = json.loads(
                (tmp_path / "baseline" / f"{name}.result.json").read_text(
                    encoding="utf-8"
                )
            )
            res = json.loads(
                (killed_dir / f"{name}.result.json").read_text(
                    encoding="utf-8"
                )
            )
            assert base == res  # bitwise: floats round-trip via repr
            report = verify_replay(
                killed_dir / f"{name}.jsonl",
                bowl_objective(dim=3),
                mode="both",
            )
            assert report.zero_divergence, report.summary()

    def test_resume_skips_completed_campaigns(self, tmp_path):
        runs = tmp_path / "runs"
        self._run_fleet(runs)
        again = self._run_fleet(runs, resume=True)
        assert again.n_failed == 0
        assert all(o.already_complete for o in again.outcomes)


class TestSchedulerSigkill:
    """A real SIGKILL of the service process, then ``--resume``."""

    def _jobs(self, delay: float) -> dict:
        jobs = []
        for name, seed in (("k1", 1), ("k2", 2)):
            job = {
                "name": name,
                "seed": seed,
                "testbench": "uvlo",
                "measure": "delta_vthl",
                "engine": {"kind": "monte-carlo", "n_samples": 16},
                "run": {"threshold": "auto"},
            }
            if delay:
                job["eval_delay_seconds"] = delay
            jobs.append(job)
        return {"jobs": jobs}

    def _serve(self, jobs_file: Path, runs: Path, *extra: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).parent.parent / "src")
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve",
                str(jobs_file),
                "--runs-dir",
                str(runs),
                "--workers",
                "2",
                *extra,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )

    def test_sigkill_then_resume_is_bitwise(self, tmp_path):
        # baseline: same jobs without pacing — DelayObjective does not
        # change values, so X/y must come out identical
        baseline_jobs = tmp_path / "baseline.json"
        baseline_jobs.write_text(
            json.dumps(self._jobs(delay=0.0)), encoding="utf-8"
        )
        baseline_runs = tmp_path / "baseline"
        proc = self._serve(baseline_jobs, baseline_runs)
        out, _ = proc.communicate(timeout=120)
        assert proc.returncode == 0, out.decode()

        paced_jobs = tmp_path / "paced.json"
        paced_jobs.write_text(
            json.dumps(self._jobs(delay=0.08)), encoding="utf-8"
        )
        killed_runs = tmp_path / "killed"
        victim = self._serve(paced_jobs, killed_runs)
        try:
            # wait until at least one campaign has completed events on
            # disk, then kill the whole service without warning
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if victim.poll() is not None:
                    break  # finished before we could kill it — still valid
                ledgers = list(killed_runs.glob("k*.jsonl"))
                if any(
                    '"event":"completed"' in p.read_text(encoding="utf-8")
                    for p in ledgers
                ):
                    victim.send_signal(signal.SIGKILL)
                    break
                time.sleep(0.05)
            victim.wait(timeout=60)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait(timeout=60)

        resumer = self._serve(paced_jobs, killed_runs, "--resume")
        out, _ = resumer.communicate(timeout=120)
        assert resumer.returncode == 0, out.decode()

        from repro.circuits.behavioral.uvlo import UVLOTestbench

        bench = UVLOTestbench()
        for name in ("k1", "k2"):
            base = json.loads(
                (baseline_runs / f"{name}.result.json").read_text(
                    encoding="utf-8"
                )
            )
            res = json.loads(
                (killed_runs / f"{name}.result.json").read_text(
                    encoding="utf-8"
                )
            )
            assert base == res
            report = verify_replay(
                killed_runs / f"{name}.jsonl",
                bench.objective("delta_vthl"),
                mode="warm",
            )
            assert report.zero_divergence, report.summary()


# -- shared RuntimePolicy plumbing -------------------------------------------


class TestSharedPolicy:
    def test_shared_accepts_existing_cache(self, tmp_path):
        with ResultCache.open(tmp_path / "c", decimals=8) as cache:
            policy = RuntimePolicy.shared(cache=cache)
            assert policy.cache is cache
            assert policy.config.cache_decimals == 8

    def test_shared_opens_cache_path(self, tmp_path):
        policy = RuntimePolicy.shared(cache_path=tmp_path / "c")
        try:
            assert policy.cache.persistent
        finally:
            policy.cache.close()

    def test_shared_rejects_both(self, tmp_path):
        with ResultCache.open(tmp_path / "c") as cache:
            with pytest.raises(ValueError, match="not both"):
                RuntimePolicy.shared(cache=cache, cache_path=tmp_path / "d")

    def test_resume_rejects_decimal_mismatch(self, tmp_path):
        from repro.runtime.resume import resume

        ledger = tmp_path / "run.jsonl"
        ledger.write_text(
            '{"event":"campaign","cache_decimals":12}\n', encoding="utf-8"
        )
        cache = ResultCache.in_memory(decimals=6)
        with pytest.raises(ValueError, match="decimals"):
            resume(ledger, decimals=12, cache=cache)
