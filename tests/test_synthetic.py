"""Tests for the synthetic objective functions."""

import numpy as np
import pytest

from repro.synthetic import (
    EmbeddedFunction,
    RareFailureFunction,
    branin,
    random_orthonormal,
    rastrigin,
    rosenbrock,
    sphere,
    styblinski_tang,
    ysyn,
)


class TestYsyn:
    def test_zero_at_target(self):
        c = np.array([0.3, -0.5])
        assert ysyn(c)(c) == 0.0

    def test_normalization_eq10(self):
        c = np.array([3.0, 4.0])  # norm 5
        fun = ysyn(c)
        assert fun(np.zeros(2)) == pytest.approx(1.0)

    def test_rejects_zero_target(self):
        with pytest.raises(ValueError):
            ysyn(np.zeros(3))


class TestClassicFunctions:
    def test_sphere_minimum(self):
        assert sphere(np.zeros(5)) == 0.0

    def test_branin_global_minimum(self):
        assert branin(np.array([np.pi, 2.275])) == pytest.approx(0.397887, abs=1e-5)

    def test_branin_requires_2d(self):
        with pytest.raises(ValueError):
            branin(np.zeros(3))

    def test_styblinski_minimum(self):
        v = np.full(3, -2.903534)
        assert styblinski_tang(v) == pytest.approx(3 * -39.16617, abs=1e-3)

    def test_rosenbrock_minimum(self):
        assert rosenbrock(np.ones(4)) == 0.0

    def test_rosenbrock_needs_2d(self):
        with pytest.raises(ValueError):
            rosenbrock(np.ones(1))

    def test_rastrigin_minimum(self):
        assert rastrigin(np.zeros(3)) == pytest.approx(0.0)


class TestRandomOrthonormal:
    def test_orthonormal_columns(self, rng):
        B = random_orthonormal(10, 4, seed=rng)
        np.testing.assert_allclose(B.T @ B, np.eye(4), atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_orthonormal(3, 4)


class TestEmbeddedFunction:
    def test_invariance_orthogonal_to_subspace(self, rng):
        """The defining property of effective dimensionality (Section 4.1):
        moving orthogonally to the effective subspace leaves y unchanged."""
        fun = EmbeddedFunction(sphere, total_dim=8, effective_dim=3, seed=0)
        x = rng.uniform(-1, 1, 8)
        # component orthogonal to span(B)
        delta = rng.standard_normal(8)
        delta -= fun.basis @ (fun.basis.T @ delta)
        assert fun(x + delta) == pytest.approx(fun(x), abs=1e-10)

    def test_sensitivity_inside_subspace(self, rng):
        fun = EmbeddedFunction(sphere, total_dim=8, effective_dim=3, seed=1)
        x = rng.uniform(-0.5, 0.5, 8)
        direction = fun.basis[:, 0]
        assert fun(x + 0.5 * direction) != pytest.approx(fun(x))

    def test_dimension_check(self):
        fun = EmbeddedFunction(sphere, total_dim=5, effective_dim=2, seed=2)
        with pytest.raises(ValueError):
            fun(np.zeros(4))


class TestRareFailureFunction:
    def test_pocket_value_below_threshold(self):
        fun = RareFailureFunction(15, 3, threshold=-1.0, depth=3.0, seed=4)
        x = np.clip(fun.pocket_x, -1, 1)
        assert fun(x) < fun.threshold

    def test_failures_rare_under_uniform(self, rng):
        fun = RareFailureFunction(
            15, 3, threshold=-1.0, depth=3.0, radius=0.15, seed=5
        )
        X = rng.uniform(-1, 1, (5000, 15))
        values = np.array([fun(x) for x in X])
        assert np.mean(values < fun.threshold) < 0.01

    def test_effective_subspace_invariance(self, rng):
        fun = RareFailureFunction(12, 2, seed=6)
        x = rng.uniform(-0.5, 0.5, 12)
        delta = rng.standard_normal(12)
        delta -= fun.basis @ (fun.basis.T @ delta)
        assert fun(x + delta) == pytest.approx(fun(x), abs=1e-10)

    def test_validation(self):
        with pytest.raises(ValueError):
            RareFailureFunction(10, 2, center_fraction=0.0)
        with pytest.raises(ValueError):
            RareFailureFunction(10, 2, depth=-1.0)
