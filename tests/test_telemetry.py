"""Tests for the telemetry layer: tracer, metrics, profiling gate, report.

The trace schema round-trip and nesting invariants are pinned here; the
campaign-level reconciliation against the :class:`RunLedger` lives in
``tests/test_campaign.py``.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.telemetry import (
    NULL_METRICS,
    NULL_SPAN,
    NULL_TELEMETRY,
    NULL_TRACER,
    MetricsRegistry,
    Telemetry,
    TelemetryConfig,
    TraceSchemaError,
    Tracer,
    read_trace,
    resolve_telemetry,
)
from repro.telemetry import profile as profile_mod
from repro.telemetry.report import (
    main as report_main,
    phase_breakdown,
    render_report,
)


class FakeClock:
    """A deterministic monotonic clock: each read advances by ``step``."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


# -- tracer ------------------------------------------------------------------


class TestTracer:
    def test_nesting_and_ids(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("campaign") as root:
            with tracer.span("iteration", index=0) as it:
                with tracer.span("gp_fit"):
                    pass
            assert it.attrs == {"index": 0}
        tracer.close()
        by_name = {line["name"]: line for line in tracer.finished}
        assert by_name["gp_fit"]["parent"] == by_name["iteration"]["id"]
        assert by_name["iteration"]["parent"] == by_name["campaign"]["id"]
        assert by_name["campaign"]["parent"] is None
        # ids assigned at open: parents are numbered before children
        assert by_name["campaign"]["id"] < by_name["iteration"]["id"]
        assert root.span_id == by_name["campaign"]["id"]

    def test_record_span_parents_under_open_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("iteration"):
            tracer.record_span("evaluate", 0.5, {"id": "abc"})
        tracer.close()
        evaluate = next(s for s in tracer.finished if s["name"] == "evaluate")
        iteration = next(s for s in tracer.finished if s["name"] == "iteration")
        assert evaluate["parent"] == iteration["id"]
        assert evaluate["dt"] == 0.5
        assert evaluate["attrs"] == {"id": "abc"}

    def test_span_attrs_set_and_add(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("acq_opt") as span:
            span.set("fevals", 10)
            span.add("fevals", 5)
            span.add("clipped", 0.25)
        tracer.close()
        assert tracer.finished[0]["attrs"] == {"fevals": 15, "clipped": 0.25}

    def test_annotate_accumulates_on_innermost_open_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("campaign"):
            with tracer.span("iteration"):
                tracer.annotate("cache_hits", 3)
                tracer.annotate("cache_hits", 2)
                tracer.annotate("cache_misses", 4)
        tracer.close()
        iteration = next(
            s for s in tracer.finished if s["name"] == "iteration"
        )
        campaign = next(s for s in tracer.finished if s["name"] == "campaign")
        assert iteration["attrs"] == {"cache_hits": 5, "cache_misses": 4}
        assert campaign["attrs"] == {}

    def test_annotate_without_open_span_is_noop(self):
        tracer = Tracer(clock=FakeClock())
        tracer.annotate("cache_hits", 1)  # nothing open: silently dropped
        tracer.close()
        assert tracer.finished == []

    def test_close_with_open_span_raises(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.span("campaign")
        span.__enter__()
        with pytest.raises(TraceSchemaError, match="still open"):
            tracer.close()

    def test_out_of_order_close_raises(self):
        tracer = Tracer(clock=FakeClock())
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(TraceSchemaError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_durations_are_monotonic_deltas(self):
        clock = FakeClock(step=2.0)
        tracer = Tracer(clock=clock)
        with tracer.span("campaign"):
            pass
        tracer.close()
        line = tracer.finished[0]
        assert line["dt"] == pytest.approx(2.0)
        assert line["t0"] >= 0.0


class TestTraceRoundTrip:
    def _write_trace(self, path: Path) -> Tracer:
        tracer = Tracer(path, clock=FakeClock())
        with tracer.span("campaign", engine="RemboBO"):
            with tracer.span("iteration", index=0):
                tracer.record_span("evaluate", 1.0, {"id": "x1", "y": -0.2})
        tracer.close()
        return tracer

    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        tracer = self._write_trace(path)
        trace = read_trace(path)
        assert trace.version == 1
        assert len(trace) == len(tracer.finished) == 3
        (root,) = trace.roots()
        assert root.name == "campaign"
        assert root.attrs == {"engine": "RemboBO"}
        (evaluate,) = trace.named("evaluate")
        assert evaluate.attrs["id"] == "x1"
        (iteration,) = trace.named("iteration")
        assert evaluate.parent_id == iteration.span_id
        assert trace.children(iteration.span_id) == [evaluate]
        assert evaluate.t1 == pytest.approx(evaluate.t0 + evaluate.dt)

    def test_header_line_first(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        self._write_trace(path)
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"kind": "trace", "version": 1}

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        self._write_trace(path)
        with path.open("a") as fh:
            fh.write('{"kind": "span", "name": "tru')  # killed mid-write
        assert len(read_trace(path)) == 3

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"kind":"span","name":"a","id":1,"parent":null,"t0":0,"dt":1,'
            '"attrs":{}}\n'
        )
        with pytest.raises(TraceSchemaError, match="header"):
            read_trace(path)

    def test_duplicate_id_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        span = '{"kind":"span","name":"a","id":1,"parent":null,"t0":0,"dt":1,"attrs":{}}'
        path.write_text('{"kind":"trace","version":1}\n' + span + "\n" + span + "\n")
        with pytest.raises(TraceSchemaError, match="duplicate span id"):
            read_trace(path)

    def test_parent_must_open_before_child(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"kind":"trace","version":1}\n'
            '{"kind":"span","name":"a","id":1,"parent":2,"t0":0,"dt":1,"attrs":{}}\n'
            '{"kind":"span","name":"b","id":2,"parent":null,"t0":0,"dt":1,"attrs":{}}\n'
        )
        with pytest.raises(TraceSchemaError, match="non-ancestor parent"):
            read_trace(path)

    def test_unknown_parent_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"kind":"trace","version":1}\n'
            '{"kind":"span","name":"a","id":7,"parent":3,"t0":0,"dt":1,"attrs":{}}\n'
        )
        with pytest.raises(TraceSchemaError, match="unknown parent"):
            read_trace(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"trace","version":99}\n')
        with pytest.raises(TraceSchemaError, match="version"):
            read_trace(path)

    def test_negative_duration_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"kind":"trace","version":1}\n'
            '{"kind":"span","name":"a","id":1,"parent":null,"t0":0,"dt":-1,'
            '"attrs":{}}\n'
        )
        with pytest.raises(TraceSchemaError, match="negative duration"):
            read_trace(path)


# -- metrics -----------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("evaluations.completed").inc()
        registry.counter("evaluations.completed").inc(2)
        registry.gauge("gp.lml").set(-12.5)
        for value in (1.0, 3.0):
            registry.histogram("evaluations.seconds").observe(value)
        snap = registry.snapshot()
        assert snap["counters"] == {"evaluations.completed": 3}
        assert snap["gauges"] == {"gp.lml": -12.5}
        assert snap["histograms"]["evaluations.seconds"] == {
            "count": 2, "total": 4.0, "mean": 2.0, "min": 1.0, "max": 3.0,
        }

    def test_snapshot_is_deterministic_and_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        registry.histogram("empty")  # registered but never observed
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["histograms"]["empty"]["min"] is None
        json.dumps(snap)  # plain builtins only

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")


class TestNullObjects:
    def test_null_tracer_hands_out_shared_span(self):
        assert NULL_TRACER.span("anything", a=1) is NULL_SPAN
        with NULL_TRACER.span("x") as span:
            span.set("k", 1)
            span.add("k", 1)
        NULL_TRACER.record_span("evaluate", 1.0)
        NULL_TRACER.close()
        assert not NULL_TRACER.enabled

    def test_null_metrics_share_instruments(self):
        assert NULL_METRICS.counter("a") is NULL_METRICS.counter("b")
        NULL_METRICS.counter("a").inc()
        assert NULL_METRICS.counter("a").value == 0
        assert NULL_METRICS.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_resolve_telemetry(self, tmp_path):
        assert resolve_telemetry(None) is NULL_TELEMETRY
        live = Telemetry(tracer=Tracer(), metrics=MetricsRegistry())
        assert resolve_telemetry(live) is live
        materialized = resolve_telemetry(
            TelemetryConfig(trace_path=tmp_path / "t.jsonl")
        )
        assert materialized.enabled
        assert materialized.tracer.path == tmp_path / "t.jsonl"
        materialized.close()
        assert not NULL_TELEMETRY.enabled


# -- profiling gate ----------------------------------------------------------


def _profile_probe(env_value: str | None) -> str:
    """Report decorator behaviour from a fresh interpreter."""
    code = (
        "from repro.telemetry.profile import profiled, profile_snapshot\n"
        "def f(x):\n"
        "    return x\n"
        "g = profiled('probe.site')(f)\n"
        "g(1); g(2)\n"
        "snap = profile_snapshot()\n"
        "if g is f:\n"
        "    print('identity', len(snap))\n"
        "else:\n"
        "    print('wrapped', snap['probe.site']['calls'])\n"
    )
    import os

    env = dict(os.environ, PYTHONPATH="src")
    env.pop("REPRO_PROFILE", None)
    if env_value is not None:
        env["REPRO_PROFILE"] = env_value
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(Path(__file__).resolve().parent.parent),
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


class TestProfileGate:
    def test_decorator_is_identity_when_off(self):
        assert _profile_probe(None) == "identity 0"
        assert _profile_probe("0") == "identity 0"

    def test_decorator_accumulates_when_on(self):
        assert _profile_probe("1") == "wrapped 2"

    def test_hot_path_sites_unwrapped_when_off(self):
        """The instrumented GP/acquisition sites must cost nothing when off.

        ``profiled`` resolves at import time, so with ``REPRO_PROFILE``
        unset the decorated hot-path functions are the bare functions —
        no wrapper frame on the perf-smoke path (the <2% budget).
        """
        code = (
            "from repro.gp.model import GaussianProcess\n"
            "from repro.gp.evaluator import MarginalLikelihoodEvaluator\n"
            "from repro.acquisition.optimize import optimize_acquisition\n"
            "from repro.bo.propose import propose_batch\n"
            "wrapped = [\n"
            "    hasattr(GaussianProcess.predict, '__wrapped__'),\n"
            "    hasattr(MarginalLikelihoodEvaluator.evaluate, '__wrapped__'),\n"
            "    hasattr(optimize_acquisition, '__wrapped__'),\n"
            "    hasattr(propose_batch, '__wrapped__'),\n"
            "]\n"
            "print('wrapped' if any(wrapped) else 'bare')\n"
        )
        import os

        for env_value, expected in ((None, "bare"), ("1", "wrapped")):
            env = dict(os.environ, PYTHONPATH="src")
            env.pop("REPRO_PROFILE", None)
            env.pop("REPRO_SANITIZE", None)  # sanitizer wraps too; isolate
            if env_value is not None:
                env["REPRO_PROFILE"] = env_value
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                cwd=str(Path(__file__).resolve().parent.parent),
            )
            assert proc.returncode == 0, proc.stderr
            assert proc.stdout.strip() == expected

    def test_profile_enabled_reflects_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert not profile_mod.profile_enabled()
        for value in ("1", "true", "YES", " on "):
            monkeypatch.setenv("REPRO_PROFILE", value)
            assert profile_mod.profile_enabled()
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert not profile_mod.profile_enabled()


# -- report CLI --------------------------------------------------------------


class TestReport:
    def _trace_file(self, tmp_path) -> Path:
        path = tmp_path / "run.trace.jsonl"
        tracer = Tracer(path, clock=FakeClock())
        with tracer.span("campaign"):
            with tracer.span("iteration", index=0):
                with tracer.span("gp_fit"):
                    pass
                with tracer.span("acq_opt") as acq:
                    acq.set("fevals", 120)
                tracer.record_span("evaluate", 0.5, {"id": "a"})
                tracer.record_span("evaluate", 0.25, {"id": "b"})
        tracer.close()
        return path

    def test_phase_breakdown(self, tmp_path):
        trace = read_trace(self._trace_file(tmp_path))
        rows = {row.name: row for row in phase_breakdown(trace)}
        assert rows["evaluate"].count == 2
        assert rows["evaluate"].total_seconds == pytest.approx(0.75)
        assert rows["acq_opt"].evaluations == 120
        assert rows["campaign"].share == pytest.approx(1.0)
        # every child phase fits inside the campaign wall clock
        assert all(row.share <= 1.0 + 1e-9 for row in rows.values())

    def test_render_report_mentions_phases(self, tmp_path):
        trace = read_trace(self._trace_file(tmp_path))
        text = render_report(trace)
        for phase in ("campaign", "iteration", "gp_fit", "acq_opt", "evaluate"):
            assert phase in text

    def test_cache_hit_rate_columns(self, tmp_path):
        path = tmp_path / "hits.trace.jsonl"
        tracer = Tracer(path, clock=FakeClock())
        with tracer.span("campaign"):
            with tracer.span("iteration", index=0):
                tracer.annotate("cache_hits", 3)
                tracer.annotate("cache_misses", 1)
            with tracer.span("iteration", index=1):
                tracer.annotate("cache_hits", 1)
                tracer.annotate("cache_misses", 3)
        tracer.close()
        rows = {
            row.name: row for row in phase_breakdown(read_trace(path))
        }
        assert rows["iteration"].cache_hits == 4
        assert rows["iteration"].cache_misses == 4
        assert rows["iteration"].cache_rate == pytest.approx(0.5)
        # phases without cache annotations stay untracked, not 0%
        assert rows["campaign"].cache_rate is None
        text = render_report(read_trace(path))
        assert "hit rate" in text
        assert "50.0%" in text

    def test_cli_main(self, tmp_path, capsys):
        path = self._trace_file(tmp_path)
        assert report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "campaign wall clock" in out
        assert "evaluate" in out
