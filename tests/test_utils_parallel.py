"""Tests for the opt-in process-pool fan-out in repro.utils.parallel."""

from __future__ import annotations

import os

import pytest

from repro.utils.parallel import WorkerPool, parallel_map, resolve_n_jobs


# Worker functions must live at module level so they pickle under the
# spawn start method as well as fork.
def _square(x):
    return x * x


def _maybe_fail(x):
    if x == 3:
        raise ValueError(f"task {x} failed")
    return x


class TestResolveNJobs:
    def test_explicit_positive_passes_through(self):
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(7) == 7

    @pytest.mark.parametrize("n_jobs", [None, 0, -1, -8])
    def test_none_zero_negative_mean_all_cores(self, n_jobs):
        assert resolve_n_jobs(n_jobs) == (os.cpu_count() or 1)


class TestParallelMap:
    TASKS = list(range(10))

    def test_sequential_matches_comprehension(self):
        assert parallel_map(_square, self.TASKS, n_jobs=1) == [
            t * t for t in self.TASKS
        ]

    def test_parallel_preserves_task_order(self):
        # bit-for-bit match with the sequential path is the module's
        # reproducibility contract
        assert parallel_map(_square, self.TASKS, n_jobs=4) == [
            t * t for t in self.TASKS
        ]

    def test_accepts_any_iterable(self):
        assert parallel_map(_square, iter(self.TASKS), n_jobs=2) == [
            t * t for t in self.TASKS
        ]

    def test_empty_task_list(self):
        assert parallel_map(_square, [], n_jobs=4) == []

    def test_single_task_stays_in_process(self, monkeypatch):
        import repro.utils.parallel as par

        def _boom(*args, **kwargs):
            raise AssertionError("a pool was spawned for one task")

        monkeypatch.setattr(par, "ProcessPoolExecutor", _boom)
        assert parallel_map(_square, [5], n_jobs=4) == [25]

    @pytest.mark.parametrize("n_jobs", [1, 3])
    def test_worker_exception_propagates(self, n_jobs):
        with pytest.raises(ValueError, match="task 3 failed"):
            parallel_map(_maybe_fail, self.TASKS, n_jobs=n_jobs)

    def test_worker_count_capped_by_task_count(self, monkeypatch):
        import repro.utils.parallel as par

        seen: dict[str, int] = {}
        real_pool = par.ProcessPoolExecutor

        class RecordingPool(real_pool):
            def __init__(self, max_workers=None, **kwargs):
                seen["max_workers"] = max_workers
                super().__init__(max_workers=max_workers, **kwargs)

        monkeypatch.setattr(par, "ProcessPoolExecutor", RecordingPool)
        result = parallel_map(_square, [1, 2, 3], n_jobs=64)
        assert result == [1, 4, 9]
        assert seen["max_workers"] == 3


class TestForkContext:
    def test_fork_preferred_when_available(self, monkeypatch):
        import repro.utils.parallel as par

        monkeypatch.setattr(
            par.multiprocessing,
            "get_all_start_methods",
            lambda: ["fork", "spawn", "forkserver"],
        )
        assert par._fork_context().get_start_method() == "fork"

    def test_spawn_fallback_without_fork(self, monkeypatch):
        # Windows / spawn-default platforms: the shared context helper
        # falls back to the platform's first advertised start method
        import repro.utils.parallel as par

        monkeypatch.setattr(
            par.multiprocessing,
            "get_all_start_methods",
            lambda: ["spawn"],
        )
        assert par._fork_context().get_start_method() == "spawn"

    def test_parallel_map_and_pool_share_the_context(self, monkeypatch):
        # the satellite fix: one context helper, no duplicated logic —
        # both entry points must route through _fork_context
        import repro.utils.parallel as par

        calls: list[str] = []
        real = par._fork_context

        def recording():
            calls.append("ctx")
            return real()

        monkeypatch.setattr(par, "_fork_context", recording)
        parallel_map(_square, [1, 2, 3, 4], n_jobs=2)
        assert calls == ["ctx"]
        with WorkerPool(kind="process", n_jobs=2) as pool:
            results = pool.run_tasks(_square, [1, 2])
        assert [r for r, _ in results] == [1, 4]
        assert calls == ["ctx", "ctx"]
