"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = as_generator(42).uniform(size=5)
        b = as_generator(42).uniform(size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).uniform(size=5)
        b = as_generator(2).uniform(size=5)
        assert not np.array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        gen = as_generator(np.random.SeedSequence(7))
        assert isinstance(gen, np.random.Generator)


class TestSpawn:
    def test_count(self):
        children = spawn(np.random.default_rng(0), 4)
        assert len(children) == 4

    def test_children_independent_streams(self):
        children = spawn(np.random.default_rng(0), 2)
        a = children[0].uniform(size=10)
        b = children[1].uniform(size=10)
        assert not np.array_equal(a, b)

    def test_deterministic_given_parent_state(self):
        a = spawn(np.random.default_rng(5), 3)
        b = spawn(np.random.default_rng(5), 3)
        for ga, gb in zip(a, b):
            np.testing.assert_array_equal(ga.uniform(size=4), gb.uniform(size=4))

    def test_zero_children(self):
        assert spawn(np.random.default_rng(0), 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn(np.random.default_rng(0), -1)
