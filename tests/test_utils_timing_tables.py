"""Tests for repro.utils.timing and repro.utils.tables."""

import time

import pytest

from repro.utils.tables import format_count, format_sim_budget, render_table
from repro.utils.timing import Timer, format_duration


class TestTimer:
    def test_context_manager_measures(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_accumulates_across_starts(self):
        t = Timer()
        t.start()
        t.stop()
        first = t.elapsed
        t.start()
        t.stop()
        assert t.elapsed >= first

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()


class TestFormatDuration:
    def test_sub_minute(self):
        assert format_duration(12.345) == "12.35s"

    def test_minutes(self):
        assert format_duration(95) == "1m35s"

    def test_hours_paper_style(self):
        assert format_duration(4 * 3600 + 22 * 60 + 7) == "4h22m07s"

    def test_zero(self):
        assert format_duration(0.0) == "0.00s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)


class TestRenderTable:
    def test_basic_alignment(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert lines[0].startswith("a  ")
        assert "333" in lines[3]

    def test_title(self):
        out = render_table(["x"], [["1"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [["1"]])

    def test_non_string_cells(self):
        out = render_table(["n"], [[42], [3.5]])
        assert "42" in out and "3.5" in out


class TestBudgetFormatting:
    def test_count(self):
        assert format_count(649000) == "649,000"

    def test_sequential(self):
        assert format_sim_budget(5, 95) == "5init + 95seq"

    def test_batched(self):
        assert format_sim_budget(5, 95, batch=19) == "5init + 5x19batch"

    def test_bad_batch(self):
        with pytest.raises(ValueError):
            format_sim_budget(5, 95, batch=20)
