"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    as_float_array,
    as_matrix,
    as_vector,
    check_bounds,
    unit_cube_bounds,
)


class TestAsFloatArray:
    def test_converts_lists(self):
        out = as_float_array([1, 2, 3])
        assert out.dtype == float
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            as_float_array([1.0, np.nan])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            as_float_array([np.inf])


class TestAsMatrix:
    def test_promotes_vector_to_row(self):
        out = as_matrix([1.0, 2.0])
        assert out.shape == (1, 2)

    def test_keeps_matrix(self):
        out = as_matrix([[1.0, 2.0], [3.0, 4.0]])
        assert out.shape == (2, 2)

    def test_dim_check(self):
        with pytest.raises(ValueError, match="columns"):
            as_matrix([[1.0, 2.0]], dim=3)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            as_matrix(np.zeros((2, 2, 2)))


class TestAsVector:
    def test_squeezes_column(self):
        out = as_vector(np.ones((4, 1)))
        assert out.shape == (4,)

    def test_scalar_promoted(self):
        assert as_vector(3.0).shape == (1,)

    def test_length_check(self):
        with pytest.raises(ValueError, match="length"):
            as_vector([1.0, 2.0], length=3)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            as_vector(np.ones((2, 3)))


class TestCheckBounds:
    def test_dim2_layout(self):
        lower, upper = check_bounds([[0.0, 1.0], [-1.0, 2.0]])
        np.testing.assert_array_equal(lower, [0.0, -1.0])
        np.testing.assert_array_equal(upper, [1.0, 2.0])

    def test_two_row_layout(self):
        lower, upper = check_bounds(np.array([[0.0, 0.0, 0.0], [1.0, 2.0, 3.0]]))
        np.testing.assert_array_equal(upper, [1.0, 2.0, 3.0])

    def test_rejects_inverted(self):
        with pytest.raises(ValueError, match="lower bound"):
            check_bounds([[1.0, 0.0]])

    def test_rejects_equal(self):
        with pytest.raises(ValueError):
            check_bounds([[1.0, 1.0]])

    def test_rejects_infinite(self):
        with pytest.raises(ValueError, match="finite"):
            check_bounds([[0.0, np.inf]])

    def test_dim_mismatch(self):
        with pytest.raises(ValueError, match="dims"):
            check_bounds([[0.0, 1.0]], dim=2)

    def test_returns_copies(self):
        arr = np.array([[0.0, 1.0]])
        lower, _ = check_bounds(arr)
        lower[0] = 99.0
        assert arr[0, 0] == 0.0


class TestUnitCubeBounds:
    def test_shape_and_values(self):
        bounds = unit_cube_bounds(3)
        assert bounds.shape == (3, 2)
        np.testing.assert_array_equal(bounds[:, 0], [-1, -1, -1])
        np.testing.assert_array_equal(bounds[:, 1], [1, 1, 1])

    def test_rejects_zero_dim(self):
        with pytest.raises(ValueError):
            unit_cube_bounds(0)
