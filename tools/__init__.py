"""Repository tooling (static analysis, CI helpers).

Not part of the :mod:`repro` library — nothing here is imported by the
reproduction code itself.
"""
