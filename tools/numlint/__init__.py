"""numlint — numerics-aware static analysis for this repository.

The GP hot path introduced conventions that ordinary linters cannot see:
in-place ``*_into`` kernels must honor their output-buffer contract,
linear algebra must go through Cholesky/least-squares rather than explicit
inverses or normal equations, and every stochastic component must thread an
explicit :class:`numpy.random.Generator`.  ``numlint`` walks the tree with
AST passes that enforce those invariants and fails CI on *new* findings
relative to a committed baseline.

Usage::

    python -m tools.numlint src benchmarks tests

See ``python -m tools.numlint --help`` and DESIGN.md §8 for details.
"""

from tools.numlint.baseline import (
    fingerprint_findings,
    load_baseline,
    save_baseline,
    split_findings,
)
from tools.numlint.core import (
    FileContext,
    Finding,
    LintPass,
    iter_python_files,
    run_paths,
)
from tools.numlint.passes import all_passes, get_pass, register

__all__ = [
    "FileContext",
    "Finding",
    "LintPass",
    "all_passes",
    "get_pass",
    "register",
    "iter_python_files",
    "run_paths",
    "fingerprint_findings",
    "load_baseline",
    "save_baseline",
    "split_findings",
]

__version__ = "1.0.0"
