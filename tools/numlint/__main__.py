"""``python -m tools.numlint`` entry point."""

import sys

from tools.numlint.cli import main

sys.exit(main())
