"""Baseline bookkeeping: fail CI only on *new* findings.

A baseline is a committed JSON file mapping stable fingerprints to the
finding they grandfather in.  Fingerprints deliberately exclude line
numbers — they hash the file path, the diagnostic code, and the normalized
source line (plus an occurrence index for identical lines), so unrelated
edits that shift code around do not invalidate the baseline, while any
change to a flagged line surfaces it again.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from tools.numlint.core import Finding

BASELINE_VERSION = 1


def _normalize_line(text: str) -> str:
    return " ".join(text.split())


def fingerprint_findings(findings: Sequence[Finding]) -> dict[str, Finding]:
    """Map each finding to a stable fingerprint.

    Occurrence indices are assigned in (path, line) order so two identical
    offending lines in one file get distinct, reproducible fingerprints.
    """
    ordered = sorted(findings, key=lambda f: (f.relpath, f.line, f.col, f.code))
    counts: Counter[tuple[str, str, str]] = Counter()
    out: dict[str, Finding] = {}
    for finding in ordered:
        normalized = _normalize_line(finding.line_text)
        key = (finding.relpath, finding.code, normalized)
        occurrence = counts[key]
        counts[key] += 1
        payload = f"{finding.relpath}|{finding.code}|{normalized}|{occurrence}"
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
        out[digest] = finding
    return out


def load_baseline(path: Path) -> dict[str, dict]:
    """Load the fingerprint map from ``path``; missing file means empty."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} in {path}"
        )
    findings = data.get("findings", {})
    if not isinstance(findings, dict):
        raise ValueError(f"malformed baseline file {path}")
    return findings


def save_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write a baseline grandfathering in exactly ``findings``."""
    fingerprints = fingerprint_findings(findings)
    payload = {
        "version": BASELINE_VERSION,
        "tool": "numlint",
        "findings": {
            digest: {
                "path": finding.relpath,
                "code": finding.code,
                "message": finding.message,
                "line": finding.line,
            }
            for digest, finding in sorted(fingerprints.items())
        },
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split_findings(
    findings: Sequence[Finding], baseline: dict[str, dict]
) -> tuple[list[Finding], list[Finding], list[str]]:
    """Partition findings into (new, baselined) plus stale fingerprints.

    Stale fingerprints are baseline entries that no longer match any
    finding — the offending code was fixed or changed, and the baseline
    should be regenerated with ``--update-baseline``.
    """
    fingerprints = fingerprint_findings(findings)
    new: list[Finding] = []
    baselined: list[Finding] = []
    for digest, finding in fingerprints.items():
        if digest in baseline:
            baselined.append(finding)
        else:
            new.append(finding)
    stale = sorted(set(baseline) - set(fingerprints))
    new.sort(key=lambda f: (f.relpath, f.line, f.col, f.code))
    baselined.sort(key=lambda f: (f.relpath, f.line, f.col, f.code))
    return new, baselined, stale
