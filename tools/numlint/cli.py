"""Command-line entry point: ``python -m tools.numlint`` / ``numlint``.

Exit codes: 0 — clean (every finding baselined), 1 — new findings (or
baseline written with ``--update-baseline`` … which still exits 0), 2 —
usage or internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
from pathlib import Path
from typing import Sequence

from tools.numlint.baseline import load_baseline, save_baseline, split_findings
from tools.numlint.core import Finding, LintPass, run_paths
from tools.numlint.passes import all_passes, get_pass
from tools.numlint.sarif import build_sarif

DEFAULT_PATHS = ("src", "benchmarks", "tests", "examples")
DEFAULT_BASELINE = Path("tools") / "numlint" / "baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="numlint",
        description=(
            "numerics-aware static analysis: RNG discipline, linalg "
            "safety, out-buffer contracts, dtype hygiene, nondeterminism, "
            "concurrency safety, determinism & replay safety"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="repository root that relative paths and the baseline resolve "
        "against (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather in the current findings",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated code prefixes to report (e.g. NL0,NL101)",
    )
    parser.add_argument(
        "--pass",
        dest="pass_names",
        action="append",
        default=None,
        metavar="NAME",
        help="run only the named pass (repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github", "sarif"),
        default=None,
        help="output format (default: text; 'github' emits workflow-command "
        "annotations and is auto-selected when GITHUB_ACTIONS is set; "
        "'sarif' emits a SARIF 2.1.0 log of the new findings)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyze files across N forked worker processes (prepare stays "
        "single-threaded; output is byte-identical to --jobs 1)",
    )
    parser.add_argument(
        "--explain",
        metavar="NLxxx",
        default=None,
        help="print the rationale and example snippets for one diagnostic "
        "code, then exit",
    )
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help="list registered passes and their codes, then exit",
    )
    parser.add_argument(
        "--fail-stale",
        action="store_true",
        help="exit non-zero when baseline entries no longer match any "
        "finding (keeps the baseline from rotting as findings are fixed)",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also print findings suppressed by the baseline",
    )
    parser.add_argument(
        "--with-external",
        action="store_true",
        help="additionally run ruff and mypy when installed (skipped with a "
        "notice otherwise)",
    )
    return parser


def _github_escape(text: str) -> str:
    """Escape a message for a GitHub Actions workflow command."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _render_github(finding: Finding) -> str:
    """A ``::error`` annotation GitHub attaches to the PR diff line."""
    return (
        f"::error file={finding.relpath},line={finding.line},"
        f"col={finding.col + 1},title={finding.code}"
        f"::{_github_escape(finding.message)} [{finding.pass_name}]"
    )


def _list_passes() -> int:
    for lint_pass in all_passes():
        print(f"{lint_pass.name}: {lint_pass.description}")
        for code, summary in sorted(lint_pass.codes.items()):
            print(f"  {code}  {summary}")
    return 0


def _docstring_rationale(lint_pass: LintPass, code: str) -> str | None:
    """The ``* **NLxxx** —`` bullet for ``code`` from the pass docstrings.

    Every pass module documents its codes as a bulleted registry; this
    parses the bullet body (including indented continuation lines) so
    ``--explain`` and the docs cannot drift apart.
    """
    docs = [
        sys.modules.get(type(lint_pass).__module__).__doc__ or "",
        type(lint_pass).__doc__ or "",
    ]
    pattern = re.compile(
        rf"^\* \*\*{re.escape(code)}\*\*\s*[—-]\s*(.*)$"
    )
    for doc in docs:
        lines = doc.splitlines()
        for i, line in enumerate(lines):
            match = pattern.match(line.strip())
            if match is None:
                continue
            body = [match.group(1).strip()]
            for cont in lines[i + 1 :]:
                stripped = cont.strip()
                if not stripped or stripped.startswith("* **"):
                    break
                body.append(stripped)
            return " ".join(body)
    return None


def _explain(code: str) -> int:
    """Print the rationale and example pair for one diagnostic code."""
    code = code.strip().upper()
    for lint_pass in all_passes():
        if code not in lint_pass.codes:
            continue
        print(f"{code}: {lint_pass.codes[code]}")
        print(f"pass: {lint_pass.name} — {lint_pass.description}")
        rationale = _docstring_rationale(lint_pass, code)
        if rationale:
            print()
            print(rationale)
        example = lint_pass.examples.get(code)
        if example:
            triggering, clean = example
            print()
            print("triggers:")
            for line in triggering.strip("\n").splitlines():
                print(f"    {line}")
            print()
            print("clean:")
            for line in clean.strip("\n").splitlines():
                print(f"    {line}")
        return 0
    known = sorted(
        code for lint_pass in all_passes() for code in lint_pass.codes
    )
    print(f"numlint: unknown code {code!r}", file=sys.stderr)
    print(f"numlint: known codes: {', '.join(known)}", file=sys.stderr)
    return 2


def _run_external(root: Path) -> int:
    """Best-effort ruff + mypy; missing tools are a notice, not a failure."""
    status = 0
    for tool, cmd in (
        ("ruff", ["ruff", "check", "src", "benchmarks", "tests", "tools"]),
        ("mypy", ["mypy", "--config-file", "pyproject.toml"]),
    ):
        if shutil.which(tool) is None:
            print(f"numlint: {tool} not installed; skipping")
            continue
        print(f"numlint: running {' '.join(cmd)}")
        proc = subprocess.run(cmd, cwd=root)
        status = max(status, min(proc.returncode, 1))
    return status


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_passes:
        return _list_passes()
    if args.explain is not None:
        return _explain(args.explain)

    root = args.root.resolve()
    baseline_path = (
        args.baseline if args.baseline is not None else root / DEFAULT_BASELINE
    )
    if not baseline_path.is_absolute():
        baseline_path = root / baseline_path
    select = (
        [s.strip() for s in args.select.split(",") if s.strip()]
        if args.select
        else None
    )
    try:
        passes = (
            [get_pass(name) for name in args.pass_names]
            if args.pass_names
            else None
        )
        findings = run_paths(
            args.paths, root, passes=passes, select=select, jobs=args.jobs
        )
    except (FileNotFoundError, KeyError) as exc:
        print(f"numlint: error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        save_baseline(baseline_path, findings)
        print(
            f"numlint: baseline written to "
            f"{baseline_path.relative_to(root)} ({len(findings)} findings)"
        )
        return 0

    baseline = {} if args.no_baseline else load_baseline(baseline_path)
    new, baselined, stale = split_findings(findings, baseline)

    output_format = args.format
    if output_format is None:
        output_format = (
            "github" if os.environ.get("GITHUB_ACTIONS") else "text"
        )

    if output_format == "sarif":
        active = passes if passes is not None else all_passes()
        print(json.dumps(build_sarif(new, active), indent=2))
    elif output_format == "json":
        print(
            json.dumps(
                {
                    "new": [f.to_json() for f in new],
                    "baselined": [f.to_json() for f in baselined],
                    "stale_fingerprints": stale,
                },
                indent=2,
            )
        )
    elif output_format == "github":
        for finding in new:
            print(_render_github(finding))
        print(
            f"numlint: {len(new)} new finding(s), {len(baselined)} baselined"
        )
        if stale:
            print(
                f"::warning title=numlint::{len(stale)} stale baseline "
                "fingerprint(s) no longer match any finding; refresh with "
                "--update-baseline"
            )
    else:
        for finding in new:
            print(finding.render())
        if args.show_baselined:
            for finding in baselined:
                print(f"{finding.render()} (baselined)")
        summary = (
            f"numlint: {len(new)} new finding(s), "
            f"{len(baselined)} baselined, {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'}"
        )
        print(summary)
        if stale:
            print(
                "numlint: stale entries no longer match any finding; "
                "refresh with --update-baseline"
            )

    status = 1 if new else 0
    if args.fail_stale and stale:
        if output_format not in ("json", "sarif"):
            print(
                f"numlint: failing on {len(stale)} stale baseline "
                "entr" + ("y" if len(stale) == 1 else "ies")
                + " (--fail-stale)"
            )
        status = max(status, 1)
    if args.with_external:
        status = max(status, _run_external(root))
    return status


if __name__ == "__main__":
    sys.exit(main())
