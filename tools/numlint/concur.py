"""Escape analysis for the NL6xx concurrency-safety passes.

The concurrency passes reason about *which code runs on which thread*.
The unit of analysis is a **submission site**: a call that hands a
callable to another execution context —

* ``pool.run_tasks(fn, tasks)`` / ``executor.submit(fn, task)`` — the
  :class:`repro.utils.parallel.WorkerPool` protocol and the stdlib
  executor protocol it wraps;
* ``parallel_map(fn, items, ...)`` — the module-level helper.

:func:`find_submissions` locates those sites and resolves the submitted
callable expression back to a function definition in the same file:
a ``lambda`` literal resolves to itself, a bare name resolves to the
(lexically nearest) ``def`` with that name, and ``self.method`` resolves
to the method of the enclosing class — in which case ``self`` itself is
*shared state* from the worker's point of view (every task sees the same
instance), which :class:`Submission.self_is_shared` records.

The second half of the module is name-binding analysis over a resolved
callable: :func:`bound_names` collects every name the callable binds
(parameters, assignments, comprehension and loop targets, imports,
``with``/``except`` aliases) minus names it explicitly declares
``global``/``nonlocal``.  A name *used* by the callable but not bound is
free — it escaped from the submitting scope into the worker, and
mutating through it is exactly the hazard NL601/NL602 exist to catch.

Everything here is deliberately single-file and syntactic: no imports are
followed, no call graph is built.  That keeps the passes fast and their
verdicts explainable, at the cost of missing submissions through
indirection (a callable stored in a dict, say) — the runtime sanitizer
(``repro.utils.sanitize_concurrency``) covers the dynamic remainder.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]

#: Attribute names whose call submits its first argument to a pool:
#: ``WorkerPool.run_tasks`` and the stdlib ``Executor.submit`` protocol.
SUBMIT_METHOD_NAMES = frozenset({"run_tasks", "submit"})

#: Bare / dotted function names that submit their first argument.
SUBMIT_FUNCTION_NAMES = frozenset(
    {"parallel_map", "repro.utils.parallel.parallel_map"}
)

#: Container methods that mutate their receiver in place.  Calling one on
#: shared state from a pool-submitted callable is a data race.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "sort",
        "reverse",
        "add",
        "discard",
        "update",
        "setdefault",
        "appendleft",
        "extendleft",
        "popleft",
    }
)

#: ``numpy.random.Generator`` methods that advance the bit-generator
#: state.  Drawing from a *shared* generator inside pool tasks either
#: races (threads) or silently duplicates streams (fork inherits state).
GENERATOR_DRAW_METHODS = frozenset(
    {
        "random",
        "standard_normal",
        "normal",
        "uniform",
        "integers",
        "choice",
        "permutation",
        "permuted",
        "shuffle",
        "exponential",
        "gamma",
        "beta",
        "binomial",
        "poisson",
        "lognormal",
        "multivariate_normal",
        "standard_cauchy",
        "standard_exponential",
        "standard_gamma",
        "bytes",
    }
)


@dataclasses.dataclass
class Submission:
    """One resolved submission of a callable to a pool/executor."""

    site: ast.Call
    callable_node: FunctionNode
    display: str
    #: True when the callable is a bound method submitted as
    #: ``self.method`` — the instance is shared across every task.
    self_is_shared: bool


def root_expr(node: ast.AST) -> ast.AST:
    """The base of an attribute/subscript chain (``a.b[0].c`` → ``a``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


def root_name(node: ast.AST) -> str | None:
    """The base identifier of an attribute/subscript chain, if any."""
    base = root_expr(node)
    return base.id if isinstance(base, ast.Name) else None


def _is_submit_call(call: ast.Call, qualify) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in SUBMIT_METHOD_NAMES:
        return True
    if isinstance(func, ast.Name):
        qual = qualify(func)
        return (
            func.id in SUBMIT_FUNCTION_NAMES
            or qual in SUBMIT_FUNCTION_NAMES
        )
    return False


def _index_functions(
    tree: ast.AST,
) -> tuple[dict[str, FunctionNode], dict[ast.AST, ast.AST]]:
    """(name → nearest def, child → parent) maps for callable resolution.

    Name collisions resolve to the *last* definition in source order —
    single-file lint scope makes this unambiguous in practice, and a
    wrong pick still points at a function the author wrote.
    """
    by_name: dict[str, FunctionNode] = {}
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            by_name[node.name] = node
    return by_name, parents


def _enclosing_class(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> ast.ClassDef | None:
    cur = parents.get(node)
    while cur is not None:
        if isinstance(cur, ast.ClassDef):
            return cur
        cur = parents.get(cur)
    return None


def find_submissions(tree: ast.AST, qualify) -> list[Submission]:
    """Locate submission sites and resolve their callables.

    ``qualify`` is ``FileContext.qualified`` (or compatible): it maps an
    expression to its canonical dotted import path, used to recognize
    ``parallel_map`` through aliases.  Unresolvable callables (an
    arbitrary expression, a name with no local ``def``) are skipped —
    the pass only judges code it can actually see.
    """
    by_name, parents = _index_functions(tree)
    out: list[Submission] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        if not _is_submit_call(node, qualify):
            continue
        target = node.args[0]
        if isinstance(target, ast.Lambda):
            out.append(Submission(node, target, "<lambda>", False))
        elif isinstance(target, ast.Name):
            fn = by_name.get(target.id)
            if fn is not None:
                out.append(Submission(node, fn, target.id, False))
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            cls = _enclosing_class(node, parents)
            if cls is not None:
                for stmt in cls.body:
                    if (
                        isinstance(
                            stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                        )
                        and stmt.name == target.attr
                    ):
                        out.append(
                            Submission(
                                node, stmt, f"self.{target.attr}", True
                            )
                        )
                        break
    return out


def _param_names(fn: FunctionNode) -> set[str]:
    args = fn.args
    names = {
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    }
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    return names


def _target_names(target: ast.AST) -> Iterator[str]:
    """Plain names bound by an assignment/loop/with target."""
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            yield node.id


def bound_names(fn: FunctionNode) -> set[str]:
    """Every name the callable binds locally (see module docstring).

    Bindings anywhere in the body count, including inside nested
    functions — a deliberate over-approximation that errs toward *not*
    flagging (a name bound anywhere in the subtree is assumed local).
    Names the callable declares ``global``/``nonlocal`` are removed
    last: assigning them mutates the outer scope no matter where the
    assignment sits.
    """
    names = _param_names(fn)
    escaping: set[str] = set()
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                escaping.update(node.names)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(node.name)
                names |= _param_names(node)
            elif isinstance(node, ast.Lambda):
                names |= _param_names(node)
            elif isinstance(node, ast.ClassDef):
                names.add(node.name)
            elif isinstance(
                node, (ast.Assign, ast.AugAssign, ast.AnnAssign)
            ):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    names.update(_target_names(target))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                names.update(_target_names(node.target))
            elif isinstance(node, ast.comprehension):
                names.update(_target_names(node.target))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        names.update(_target_names(item.optional_vars))
            elif isinstance(node, ast.ExceptHandler):
                if node.name:
                    names.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    names.add(local)
            elif isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name
            ):
                names.add(node.target.id)
    return names - escaping


def callable_body(fn: FunctionNode) -> list[ast.stmt] | list[ast.expr]:
    """The statements (or lambda expression) to walk for hazards."""
    return fn.body if isinstance(fn.body, list) else [fn.body]


__all__ = [
    "GENERATOR_DRAW_METHODS",
    "MUTATING_METHODS",
    "SUBMIT_FUNCTION_NAMES",
    "SUBMIT_METHOD_NAMES",
    "Submission",
    "bound_names",
    "callable_body",
    "find_submissions",
    "root_expr",
    "root_name",
]
