"""Core framework: file contexts, the pass interface, and the tree walker.

A :class:`FileContext` bundles everything a pass needs about one file — the
parsed AST, the raw source lines, an import-alias map for resolving dotted
names like ``np.random.rand`` back to ``numpy.random.rand``, and the file's
*role* in the repository (library / hot path / experiment / benchmark /
test), which scopes several passes.

Passes are small classes yielding :class:`Finding` records; they register
themselves with :mod:`tools.numlint.passes` and are orchestrated by
:func:`run_paths`.
"""

from __future__ import annotations

import abc
import ast
import dataclasses
import re
from pathlib import Path
from typing import ClassVar, Iterable, Iterator, Sequence

#: Inline suppression marker: ``# numlint: disable`` silences every code on
#: that physical line; ``# numlint: disable=NL001,NL101`` silences only the
#: listed codes.
_SUPPRESS_RE = re.compile(
    r"#\s*numlint:\s*disable(?:=(?P<codes>[A-Z0-9_,\s]+))?"
)

#: Directories never walked (fixture snippets are deliberately bad code).
EXCLUDED_DIR_NAMES = frozenset(
    {
        "__pycache__",
        ".git",
        ".venv",
        ".mypy_cache",
        ".ruff_cache",
        ".pytest_cache",
        "numlint_fixtures",
    }
)

#: Path fragments (posix) that mark the float64 numerical hot path, where
#: the dtype-hygiene pass applies.
HOT_PATH_FRAGMENTS = (
    "repro/gp/",
    "repro/kernels/",
    "repro/acquisition/",
    "repro/optim/",
)

#: Path fragments that mark experiment-driver code (reproducibility-critical).
EXPERIMENT_FRAGMENTS = ("repro/experiments/",)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a pass at a specific source location."""

    relpath: str
    line: int
    col: int
    code: str
    message: str
    pass_name: str
    line_text: str

    def render(self) -> str:
        return (
            f"{self.relpath}:{self.line}:{self.col + 1}: "
            f"{self.code} {self.message} [{self.pass_name}]"
        )

    def to_json(self) -> dict:
        return {
            "path": self.relpath,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "pass": self.pass_name,
        }


def build_alias_map(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted import path they refer to.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random import
    default_rng as rng`` maps ``rng -> numpy.random.default_rng``.  Plain
    ``import numpy.random`` binds only the top-level name ``numpy``.
    Relative imports are ignored — the invariants target third-party
    numerics APIs, which are always absolute.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    top = alias.name.split(".", 1)[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def qualified_name(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Resolve an ``Attribute``/``Name`` chain to a canonical dotted path.

    Returns None for dynamic expressions (subscripts, calls) that cannot be
    resolved statically.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


class FileContext:
    """Everything a pass needs about one file under analysis."""

    def __init__(self, relpath: str, source: str) -> None:
        self.relpath = relpath.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.parse_error: SyntaxError | None = None
        try:
            self.tree: ast.Module = ast.parse(source, filename=self.relpath)
        except SyntaxError as exc:
            self.parse_error = exc
            self.tree = ast.Module(body=[], type_ignores=[])
        self.aliases = build_alias_map(self.tree)

    @classmethod
    def from_path(cls, path: Path, root: Path) -> "FileContext":
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
        return cls(relpath, path.read_text(encoding="utf-8"))

    # -- file roles ---------------------------------------------------------

    @property
    def is_test(self) -> bool:
        return self.relpath.startswith("tests/")

    @property
    def is_benchmark(self) -> bool:
        return self.relpath.startswith("benchmarks/")

    @property
    def is_library(self) -> bool:
        return self.relpath.startswith("src/")

    @property
    def is_experiment(self) -> bool:
        """Experiment-driver code, where reproducibility is load-bearing."""
        return self.is_benchmark or any(
            frag in self.relpath for frag in EXPERIMENT_FRAGMENTS
        )

    @property
    def is_hot_path(self) -> bool:
        """The float64 numerical core targeted by the dtype-hygiene pass."""
        return any(frag in self.relpath for frag in HOT_PATH_FRAGMENTS)

    @property
    def module_name(self) -> str:
        """Dotted module path (``src/repro/gp/model.py`` → ``repro.gp.model``).

        Files outside an importable tree still get a deterministic dotted
        name derived from the relpath, so contract indexing stays total.
        """
        parts = list(Path(self.relpath).with_suffix("").parts)
        if parts and parts[0] == "src":
            parts = parts[1:]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    # -- helpers for passes -------------------------------------------------

    def qualified(self, node: ast.AST) -> str | None:
        return qualified_name(node, self.aliases)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def is_suppressed(self, line: int, code: str) -> bool:
        match = _SUPPRESS_RE.search(self.line_text(line))
        if match is None:
            return False
        codes = match.group("codes")
        if codes is None:
            return True
        return code in {c.strip() for c in codes.split(",")}

    def finding(
        self, node: ast.AST, code: str, message: str, pass_name: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            relpath=self.relpath,
            line=line,
            col=col,
            code=code,
            message=message,
            pass_name=pass_name,
            line_text=self.line_text(line).strip(),
        )


class LintPass(abc.ABC):
    """One invariant checker.

    Subclasses declare ``name`` (kebab-case identifier), ``codes`` (a map of
    every diagnostic code they can emit to a one-line description) and
    implement :meth:`run` yielding findings for one file.  Scoping (which
    file roles the pass applies to) lives inside ``run`` so that each pass
    documents its own reach.
    """

    name: ClassVar[str]
    description: ClassVar[str]
    codes: ClassVar[dict[str, str]]
    #: Optional per-code (triggering, clean) snippet pairs for ``--explain``.
    examples: ClassVar[dict[str, tuple[str, str]]] = {}

    @abc.abstractmethod
    def run(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield findings for one file."""

    def prepare(self, contexts: Sequence[FileContext]) -> None:
        """Called once with every file context before the per-file runs.

        Interprocedural passes override this to build cross-file state (a
        contract index, a call graph); the default is a no-op.  When a pass
        is run standalone on a single context (fixture tests), ``prepare``
        may never be called — such passes must degrade to per-file scope.
        """

    def emit(
        self, ctx: FileContext, node: ast.AST, code: str, message: str
    ) -> Finding:
        if code not in self.codes:
            raise ValueError(f"pass {self.name} does not declare code {code}")
        return ctx.finding(node, code, message, self.name)


def iter_python_files(paths: Sequence[Path | str], root: Path) -> list[Path]:
    """Collect ``.py`` files under ``paths``, skipping excluded directories."""
    files: list[Path] = []
    seen: set[Path] = set()
    for entry in paths:
        base = Path(entry)
        if not base.is_absolute():
            base = root / base
        if base.is_file() and base.suffix == ".py":
            candidates: Iterable[Path] = [base]
        elif base.is_dir():
            candidates = sorted(base.rglob("*.py"))
        else:
            raise FileNotFoundError(f"no such file or directory: {entry}")
        for path in candidates:
            resolved = path.resolve()
            if resolved in seen:
                continue
            rel_parts = resolved.relative_to(root.resolve()).parts
            if any(part in EXCLUDED_DIR_NAMES for part in rel_parts):
                continue
            seen.add(resolved)
            files.append(resolved)
    return files


def run_passes_on_context(
    ctx: FileContext,
    passes: Sequence[LintPass],
    select: Sequence[str] | None = None,
) -> list[Finding]:
    """Run ``passes`` over one parsed file, honoring inline suppressions.

    Standalone (single-file) entry point: passes are prepared with just
    this context, so cross-file state from an earlier ``run_paths`` call
    on the same pass instances cannot leak in.  ``run_paths`` prepares
    with the full file set itself and calls :func:`_collect_findings`
    directly.
    """
    for lint_pass in passes:
        lint_pass.prepare([ctx])
    return _collect_findings(ctx, passes, select=select)


def _collect_findings(
    ctx: FileContext,
    passes: Sequence[LintPass],
    select: Sequence[str] | None = None,
) -> list[Finding]:
    findings: list[Finding] = []
    if ctx.parse_error is not None:
        findings.append(
            Finding(
                relpath=ctx.relpath,
                line=ctx.parse_error.lineno or 1,
                col=(ctx.parse_error.offset or 1) - 1,
                code="NL000",
                message=f"syntax error: {ctx.parse_error.msg}",
                pass_name="parser",
                line_text="",
            )
        )
        return findings
    for lint_pass in passes:
        for finding in lint_pass.run(ctx):
            if select and not any(
                finding.code.startswith(prefix) for prefix in select
            ):
                continue
            if ctx.is_suppressed(finding.line, finding.code):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.relpath, f.line, f.col, f.code))
    return findings


#: Fork-inherited state for the ``jobs > 1`` fan-out: workers index into
#: the parent's prepared contexts/passes by page-sharing instead of
#: pickling the whole analysis state per task.
_PARALLEL_STATE: dict | None = None


def _collect_slice(bounds: tuple[int, int]) -> list[Finding]:
    """Collect findings for a contiguous slice of the prepared contexts.

    One slice per worker keeps the IPC to a handful of round-trips instead
    of one per file, which is what makes the fan-out pay for itself.
    """
    state = _PARALLEL_STATE
    if state is None:  # pragma: no cover - spawn platform, never scheduled
        raise RuntimeError("numlint parallel state missing in worker")
    start, stop = bounds
    findings: list[Finding] = []
    for ctx in state["contexts"][start:stop]:
        findings.extend(
            _collect_findings(ctx, state["passes"], select=state["select"])
        )
    return findings


def _parallel_map_backend():
    """``repro.utils.parallel.parallel_map`` when importable and forkable.

    Returns ``None`` when parallel runs cannot be bitwise-faithful: without
    ``fork`` the workers would not inherit ``_PARALLEL_STATE``, and without
    ``repro`` on the path there is no pool helper to reuse.  Callers fall
    back to the sequential loop, which is always correct.
    """
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    try:
        from repro.utils.parallel import parallel_map
    except ModuleNotFoundError:
        import sys

        src = Path(__file__).resolve().parents[2] / "src"
        if not src.is_dir():
            return None
        if str(src) not in sys.path:
            sys.path.insert(0, str(src))
        try:
            from repro.utils.parallel import parallel_map
        except ModuleNotFoundError:
            return None
    return parallel_map


def run_paths(
    paths: Sequence[Path | str],
    root: Path,
    passes: Sequence[LintPass] | None = None,
    select: Sequence[str] | None = None,
    jobs: int = 1,
) -> list[Finding]:
    """Lint every python file under ``paths`` and return sorted findings.

    ``jobs > 1`` fans the per-file collection out across forked worker
    processes.  Context building and ``prepare`` (cross-file state such as
    the contract index and effect call graph) stay single-threaded in the
    parent so every worker sees the identical prepared state; per-file
    results come back in task order and feed the same global sort, so the
    output is byte-identical to a ``jobs=1`` run.
    """
    from tools.numlint.passes import all_passes

    active = list(passes) if passes is not None else all_passes()
    contexts = [
        FileContext.from_path(path, root)
        for path in iter_python_files(paths, root)
    ]
    for lint_pass in active:
        lint_pass.prepare(contexts)
    findings: list[Finding] = []
    parallel_map = _parallel_map_backend() if jobs > 1 else None
    if parallel_map is not None and len(contexts) > 1:
        global _PARALLEL_STATE
        _PARALLEL_STATE = {
            "contexts": contexts,
            "passes": active,
            "select": list(select) if select else None,
        }
        n = len(contexts)
        workers = min(jobs, n)
        step = -(-n // workers)
        slices = [(i, min(i + step, n)) for i in range(0, n, step)]
        try:
            per_slice = parallel_map(_collect_slice, slices, n_jobs=jobs)
        finally:
            _PARALLEL_STATE = None
        for chunk in per_slice:
            findings.extend(chunk)
    else:
        for ctx in contexts:
            findings.extend(_collect_findings(ctx, active, select=select))
    findings.sort(key=lambda f: (f.relpath, f.line, f.col, f.code))
    return findings


def iter_function_defs(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
