"""Interprocedural effect inference for the NL7xx determinism passes.

The determinism guarantees the evaluation runtime sells — content-addressed
dedup (``ResultCache``), bitwise kill-and-resume (``RunLedger``) — only hold
when everything *reachable* from a cache key, a ledger record or an
``Objective.evaluate`` is deterministic.  A per-file pass cannot see that
``cache_key`` calls a helper that calls ``time.time``; this module can.

The analysis has three parts:

1. **Function discovery** — every module-level function, first-level method
   and one-level nested function in the analyzed file set is indexed by
   dotted qualname (``repro.runtime.cache.ResultCache.key_for``), reusing
   the module naming of :attr:`FileContext.module_name` so cross-file calls
   resolve through the import alias map exactly as the NL5xx shape passes
   do.

2. **Intrinsic effects** — each function body is scanned (excluding nested
   ``def`` bodies, which only run when called) for calls into a catalog of
   impure APIs.  The effect alphabet:

   ========== ==========================================================
   ``TIME``        wall-clock reads: ``time.time``, ``datetime.now`` ...
                   (``time.perf_counter``/``monotonic`` are exempt —
                   durations are allowed, absolute timestamps are not)
   ``GLOBAL_RNG``  legacy global-state RNG (``np.random.rand``,
                   ``random.random``), unseeded ``default_rng()``,
                   ``os.urandom`` / ``secrets``/``uuid`` entropy
   ``ENV``         host/environment reads: ``os.environ``, ``os.getenv``,
                   ``platform.*``, ``socket.gethostname``, ``os.getpid``,
                   ``os.cpu_count``
   ``NONDET_ITER`` iteration over a set (or materializing one into an
                   ordered container without ``sorted``): order varies
                   with ``PYTHONHASHSEED``
   ``ADDR``        object-address leaks: ``id(...)``, ``repr(...)`` /
                   ``hex(id(...))`` of non-literal objects (the default
                   ``object.__repr__`` embeds the address)
   ``IO``          filesystem / process side effects: ``open``,
                   ``print``, ``subprocess.*``, path write methods
   ========== ==========================================================

   ``PURE`` is the empty effect set (lattice bottom); the join is set
   union.

3. **Propagation to fixpoint** — effects flow caller-ward along call
   edges: direct calls, ``self.method(...)`` within a class, bare names
   resolved against the defining module, imported names resolved through
   the alias map, and function *references* passed as call arguments
   (``pool.run_tasks(self._simulate, ...)`` makes the submitter inherit
   the worker's effects).  Decorated functions keep their edges — a
   decorator wraps, it does not launder effects.  Cycles (recursion,
   mutual recursion) converge because the lattice is finite and the
   transfer function is monotone.

Every inferred effect carries a **witness chain** — the call path from the
function down to the intrinsic source — so findings read "``cache_key`` →
``_salt`` → ``time.time()`` at line 12" instead of a bare verdict.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator, Mapping, Sequence

from tools.numlint.core import FileContext

#: The effect alphabet, in severity/report order.  ``PURE`` is the empty set.
EFFECTS = ("TIME", "GLOBAL_RNG", "ENV", "NONDET_ITER", "ADDR", "IO")

PURE: frozenset[str] = frozenset()

#: Wall-clock reads (absolute time).  Monotonic clocks are exempt.
_TIME_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)

#: numpy.random attributes that belong to the Generator-era API; any other
#: ``numpy.random.<name>`` call is legacy global state.
_GENERATOR_ERA = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: stdlib ``random`` module functions drawing from the hidden global stream.
_STDLIB_RANDOM = frozenset(
    {
        "random.random",
        "random.seed",
        "random.randint",
        "random.randrange",
        "random.uniform",
        "random.gauss",
        "random.normalvariate",
        "random.choice",
        "random.choices",
        "random.sample",
        "random.shuffle",
        "random.betavariate",
        "random.expovariate",
        "random.triangular",
        "random.getrandbits",
    }
)

#: OS-entropy draws: fresh randomness per process, irreproducible.
_ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.randbelow",
        "secrets.choice",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Host/environment reads that vary between machines or invocations.
_ENV_CALLS = frozenset(
    {
        "os.getenv",
        "os.uname",
        "os.getpid",
        "os.getcwd",
        "os.cpu_count",
        "os.getlogin",
        "platform.node",
        "platform.platform",
        "platform.system",
        "platform.machine",
        "platform.processor",
        "platform.release",
        "platform.version",
        "platform.python_version",
        "socket.gethostname",
        "socket.getfqdn",
        "getpass.getuser",
    }
)

#: Dotted-name *reads* (not calls) that carry the ENV effect.
_ENV_ATTRS = frozenset({"os.environ"})

#: Filesystem / process side effects.
_IO_CALLS = frozenset(
    {
        "open",
        "print",
        "input",
        "os.remove",
        "os.unlink",
        "os.makedirs",
        "os.rename",
        "os.replace",
        "os.rmdir",
        "shutil.copy",
        "shutil.copy2",
        "shutil.copytree",
        "shutil.move",
        "shutil.rmtree",
    }
)

#: Attribute-call names treated as IO regardless of the receiver (the
#: receiver is usually an unresolvable ``Path``/handle; the names are
#: distinctive enough not to collide with numeric code).
_IO_METHODS = frozenset(
    {
        "write_text",
        "write_bytes",
        "read_text",
        "read_bytes",
        "mkdir",
        "unlink",
        "rmdir",
        "touch",
    }
)


@dataclasses.dataclass(frozen=True)
class EffectSource:
    """The intrinsic origin of one effect: a concrete impure call site."""

    effect: str
    detail: str  # e.g. "time.time()" or "iteration over a set"
    relpath: str
    line: int


@dataclasses.dataclass
class FunctionInfo:
    """One analyzed function: intrinsic effects plus outgoing call edges."""

    qualname: str
    relpath: str
    lineno: int
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: effect -> first intrinsic witness in this very body
    intrinsic: dict[str, EffectSource] = dataclasses.field(default_factory=dict)
    #: resolved callee qualnames (direct calls and callable references)
    callees: list[str] = dataclasses.field(default_factory=list)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_unseeded_call(call: ast.Call) -> bool:
    """``default_rng()`` / ``default_rng(None)`` — no seed reaches it."""
    args = [a for a in call.args if not isinstance(a, ast.Starred)]
    if len(call.args) != len(args):
        return False  # *args could carry a seed
    if args and not (
        isinstance(args[0], ast.Constant) and args[0].value is None
    ):
        return False
    for kw in call.keywords:
        if kw.arg is None:
            return False  # **kwargs could carry a seed
        if kw.arg == "seed" and not (
            isinstance(kw.value, ast.Constant) and kw.value.value is None
        ):
            return False
    return True


class _BodyScanner:
    """Collects intrinsic effects and call edges from one function body.

    Nested ``def``/``async def``/``lambda`` bodies are skipped — defining a
    function has no effects; the nested function is indexed separately and
    a call edge is added wherever its name is referenced.
    """

    def __init__(
        self,
        ctx: FileContext,
        info: FunctionInfo,
        resolve: "_Resolver",
    ) -> None:
        self.ctx = ctx
        self.info = info
        self.resolve = resolve

    def scan(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._visit(stmt)

    # -- walking -------------------------------------------------------------

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # separate analysis unit
        if isinstance(node, ast.Lambda):
            # a lambda body runs when called; treating it inline is the
            # conservative choice (lambdas here are built and used locally)
            self._visit(node.body)
            return
        if isinstance(node, ast.Call):
            self._scan_call(node)
        elif isinstance(node, ast.Attribute) and isinstance(
            node.ctx, ast.Load
        ):
            qual = self.ctx.qualified(node)
            if qual in _ENV_ATTRS:
                self._record("ENV", f"{qual} read", node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter):
                self._record("NONDET_ITER", "iteration over a set", node.iter)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter):
                    self._record(
                        "NONDET_ITER", "iteration over a set", gen.iter
                    )
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            # bare function reference (callback/closure passed around)
            self.resolve.add_reference_edge(self.info, node.id)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    # -- calls ---------------------------------------------------------------

    def _scan_call(self, node: ast.Call) -> None:
        qual = self.ctx.qualified(node.func)
        if qual is not None:
            self._scan_qualified_call(node, qual)
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in _IO_METHODS:
                self._record("IO", f".{attr}() call", node)
            # self.method(...) resolves within the enclosing class
            self.resolve.add_self_call_edge(self.info, node.func)

    def _scan_qualified_call(self, node: ast.Call, qual: str) -> None:
        if qual in _TIME_CALLS:
            self._record("TIME", f"{qual}()", node)
        elif qual in _STDLIB_RANDOM:
            self._record("GLOBAL_RNG", f"{qual}()", node)
        elif qual in _ENTROPY_CALLS:
            self._record("GLOBAL_RNG", f"{qual}() (OS entropy)", node)
        elif qual in _ENV_CALLS:
            self._record("ENV", f"{qual}()", node)
        elif qual in _IO_CALLS:
            self._record("IO", f"{qual}()", node)
        elif qual.startswith("subprocess."):
            self._record("IO", f"{qual}()", node)
        elif qual.startswith("numpy.random."):
            attr = qual.split(".", 2)[2]
            head = attr.split(".", 1)[0]
            if head == "RandomState" or head not in _GENERATOR_ERA:
                self._record("GLOBAL_RNG", f"np.random.{attr}()", node)
            elif head == "default_rng" and _is_unseeded_call(node):
                self._record(
                    "GLOBAL_RNG", "unseeded default_rng()", node
                )
        elif qual == "id":
            self._record("ADDR", "id() (object address)", node)
        elif qual == "repr" and node.args and not isinstance(
            node.args[0], ast.Constant
        ):
            self._record(
                "ADDR",
                "repr() of a non-literal (default repr embeds the object "
                "address)",
                node,
            )
        elif qual in ("list", "tuple") and len(node.args) == 1 and _is_set_expr(
            node.args[0]
        ):
            self._record(
                "NONDET_ITER", "set materialized into an ordered container",
                node,
            )
        else:
            self.resolve.add_call_edge(self.info, qual)

    def _record(self, effect: str, detail: str, node: ast.AST) -> None:
        if effect not in self.info.intrinsic:
            self.info.intrinsic[effect] = EffectSource(
                effect=effect,
                detail=detail,
                relpath=self.ctx.relpath,
                line=getattr(node, "lineno", self.info.lineno),
            )


class _Resolver:
    """Resolves call expressions to indexed qualnames for one function."""

    def __init__(
        self,
        index: Mapping[str, FunctionInfo],
        module: str,
        class_name: str | None,
        local_names: Mapping[str, str],
        aliases: Mapping[str, str],
    ) -> None:
        self.index = index
        self.module = module
        self.class_name = class_name
        self.local_names = local_names  # bare name -> qualname (module scope)
        self.aliases = aliases

    def _add(self, info: FunctionInfo, qualname: str | None) -> None:
        if qualname is not None and qualname in self.index:
            info.callees.append(qualname)

    def add_call_edge(self, info: FunctionInfo, qual: str) -> None:
        # ``qual`` is already alias-resolved: ``helper`` -> same module,
        # imported names -> their defining module's dotted path.
        if "." not in qual:
            self._add(info, self.local_names.get(qual))
            return
        self._add(info, qual)
        # ``module.func`` style call through a plain ``import repro.x``:
        # the alias map leaves it dotted and it matches the index directly
        # (handled above); method calls ``Class().method`` are out of reach.

    def add_self_call_edge(self, info: FunctionInfo, func: ast.Attribute) -> None:
        if self.class_name is None:
            return
        if isinstance(func.value, ast.Name) and func.value.id in (
            "self",
            "cls",
        ):
            self._add(
                info, f"{self.module}.{self.class_name}.{func.attr}"
            )

    def add_reference_edge(self, info: FunctionInfo, name: str) -> None:
        # ``pool.run_tasks(self._simulate, ...)`` style references arrive
        # as Attribute loads (handled via add_self_call_edge at call sites)
        # or bare names; only resolve names that are functions we indexed.
        self._add(info, self.local_names.get(name))
        alias = self.aliases.get(name)
        if alias is not None and alias != name:
            self._add(info, alias)


class EffectIndex:
    """Effect sets and witness chains for every indexed function."""

    def __init__(self, functions: dict[str, FunctionInfo]) -> None:
        self.functions = functions
        self._effects: dict[str, frozenset[str]] = {}
        #: (qualname, effect) -> witness: an EffectSource (intrinsic) or
        #: the callee qualname the effect arrived through.
        self._via: dict[tuple[str, str], "EffectSource | str"] = {}
        self._propagate()

    # -- fixpoint ------------------------------------------------------------

    def _propagate(self) -> None:
        effects: dict[str, set[str]] = {}
        for qualname, info in self.functions.items():
            effects[qualname] = set(info.intrinsic)
            for eff, src in info.intrinsic.items():
                self._via[(qualname, eff)] = src
        # reverse edges: callee -> callers, for worklist propagation
        callers: dict[str, set[str]] = {}
        for qualname, info in self.functions.items():
            for callee in info.callees:
                callers.setdefault(callee, set()).add(qualname)
        worklist = [q for q, effs in effects.items() if effs]
        while worklist:
            callee = worklist.pop()
            callee_effects = effects[callee]
            for caller in sorted(callers.get(callee, ())):
                added = False
                for eff in callee_effects:
                    if eff not in effects[caller]:
                        effects[caller].add(eff)
                        self._via.setdefault((caller, eff), callee)
                        added = True
                if added:
                    worklist.append(caller)
        self._effects = {q: frozenset(e) for q, e in effects.items()}

    # -- queries -------------------------------------------------------------

    def effects_of(self, qualname: str) -> frozenset[str]:
        """The inferred effect set of ``qualname`` (PURE when unknown)."""
        return self._effects.get(qualname, PURE)

    def is_pure(self, qualname: str) -> bool:
        return not self.effects_of(qualname)

    def source_of(self, qualname: str, effect: str) -> EffectSource | None:
        """The intrinsic witness at the end of the effect's call chain."""
        seen = set()
        cur = qualname
        while cur not in seen:
            seen.add(cur)
            via = self._via.get((cur, effect))
            if via is None:
                return None
            if isinstance(via, EffectSource):
                return via
            cur = via
        return None

    def chain(self, qualname: str, effect: str) -> list[str]:
        """Call path from ``qualname`` to the intrinsic source, inclusive.

        Ends with the source detail, e.g. ``["a", "b", "time.time()"]``.
        """
        out: list[str] = []
        seen = set()
        cur = qualname
        while cur not in seen:
            seen.add(cur)
            out.append(cur)
            via = self._via.get((cur, effect))
            if via is None:
                return out
            if isinstance(via, EffectSource):
                out.append(via.detail)
                return out
            cur = via
        return out

    def render_chain(self, qualname: str, effect: str) -> str:
        """Human-readable witness: ``a -> b -> time.time()``."""
        parts = self.chain(qualname, effect)
        # drop module prefixes on function hops for readable messages; keep
        # the intrinsic detail (it contains "(" or spaces) verbatim
        short = [
            p.rsplit(".", 1)[-1] if "(" not in p and " " not in p else p
            for p in parts
        ]
        return " -> ".join(short)


def _index_one_module(
    ctx: FileContext, functions: dict[str, FunctionInfo]
) -> list[tuple[FunctionInfo, str | None]]:
    """Index the module's functions; returns (info, class_name) pairs."""
    found: list[tuple[FunctionInfo, str | None]] = []

    def add(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        class_name: str | None,
    ) -> None:
        info = FunctionInfo(
            qualname=qualname,
            relpath=ctx.relpath,
            lineno=node.lineno,
            node=node,
        )
        functions[qualname] = info
        found.append((info, class_name))
        # one-level nested defs get their own analysis unit
        for stmt in ast.walk(node):
            if stmt is node:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested_q = f"{qualname}.{stmt.name}"
                if nested_q not in functions:
                    nested = FunctionInfo(
                        qualname=nested_q,
                        relpath=ctx.relpath,
                        lineno=stmt.lineno,
                        node=stmt,
                    )
                    functions[nested_q] = nested
                    found.append((nested, class_name))

    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add(node, f"{ctx.module_name}.{node.name}", None)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add(
                        item,
                        f"{ctx.module_name}.{node.name}.{item.name}",
                        node.name,
                    )
    return found


def build_effect_index(contexts: Sequence[FileContext]) -> EffectIndex:
    """Build the repo-wide effect index from parsed file contexts."""
    functions: dict[str, FunctionInfo] = {}
    pending: list[tuple[FileContext, FunctionInfo, str | None]] = []
    for ctx in contexts:
        if ctx.parse_error is not None:
            continue
        for info, class_name in _index_one_module(ctx, functions):
            pending.append((ctx, info, class_name))

    # per-module map of bare names -> qualnames for intra-module resolution
    module_locals: dict[str, dict[str, str]] = {}
    for qualname in functions:
        module, _, name = qualname.rpartition(".")
        # register the innermost name under its module and, for nested
        # functions, under the enclosing function's module as well
        top_module = qualname.rsplit(".", 1)[0]
        module_locals.setdefault(top_module, {})[name] = qualname
        # module-level functions also resolve by bare name module-wide
        parts = qualname.split(".")
        if len(parts) >= 2:
            mod = ".".join(parts[:-1])
            module_locals.setdefault(mod, {}).setdefault(name, qualname)

    for ctx, info, class_name in pending:
        module = ctx.module_name
        locals_map = dict(module_locals.get(module, {}))
        # names defined lexically inside this function shadow module scope
        locals_map.update(module_locals.get(info.qualname, {}))
        resolver = _Resolver(
            functions, module, class_name, locals_map, ctx.aliases
        )
        scanner = _BodyScanner(ctx, info, resolver)
        scanner.scan(info.node.body)
    return EffectIndex(functions)


def iter_methods_of(
    ctx: FileContext, class_name: str
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """First-level methods of the named class in ``ctx`` (if present)."""
    for node in ctx.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item


__all__ = [
    "EFFECTS",
    "PURE",
    "EffectIndex",
    "EffectSource",
    "FunctionInfo",
    "build_effect_index",
]
