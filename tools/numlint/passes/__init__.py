"""Pass registry.

Passes register themselves via the :func:`register` decorator at import
time; importing this package pulls in every builtin pass module, so
``all_passes()`` reflects the full suite without a hand-maintained list.
"""

from __future__ import annotations

from tools.numlint.core import LintPass

_REGISTRY: dict[str, type[LintPass]] = {}


def register(cls: type[LintPass]) -> type[LintPass]:
    """Class decorator adding a pass to the global registry."""
    name = getattr(cls, "name", None)
    if not name:
        raise ValueError(f"pass {cls.__name__} must define a non-empty name")
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise ValueError(f"duplicate pass name {name!r}")
    _REGISTRY[name] = cls
    return cls


def get_pass(name: str) -> LintPass:
    """Instantiate a registered pass by name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown pass {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_passes() -> list[LintPass]:
    """Instantiate every registered pass, in registration order."""
    return [cls() for cls in _REGISTRY.values()]


def registry() -> dict[str, type[LintPass]]:
    return dict(_REGISTRY)


# Builtin passes register on import.
from tools.numlint.passes import (  # noqa: E402,F401
    concurrency,
    contract_rollout,
    determinism,
    dtype_hygiene,
    linalg_safety,
    nondeterminism,
    out_buffer,
    rng_discipline,
    shape_contracts,
)

__all__ = ["register", "get_pass", "all_passes", "registry"]
