"""Concurrency safety: the NL6xx family.

ROADMAP item 1 puts the runtime/telemetry stack under real threads, and
none of the numeric passes (NL0xx–NL5xx) can see a data race.  This pass
family is the static half of the concurrency contract (the runtime half
is ``repro.utils.sanitize_concurrency``); the escape analysis it leans on
lives in :mod:`tools.numlint.concur`.

* **NL601** — a callable submitted to a ``WorkerPool`` / executor /
  ``parallel_map`` mutates state it does not own: a free (module-level
  or closure-captured) name, a ``global``/``nonlocal`` assignment, or —
  for a bound method submitted as ``self.method`` — the shared instance
  itself.  Worker callables must write only through their arguments and
  locals; shared-state mutation belongs on the dispatching thread
  (the broker's contract, DESIGN.md §13).
* **NL602** — a pool-submitted callable draws from a shared
  ``numpy.random.Generator`` (a free name or shared ``self`` attribute).
  Threads race the bit-generator state; forked processes inherit it and
  silently produce duplicate streams.  Spawn per-task generators instead
  (``repro.utils.rng.spawn``) or pass a generator in as an argument.
  Draws through *imported* module names are skipped — global-state
  numpy/stdlib RNG is NL001's territory.
* **NL603** — a method of a ``@thread_shared`` class writes ``self``
  state outside a ``with self._lock:`` block.  The decorator is a
  promise that instances are mutated from several threads, so every
  attribute/container write must sit lexically inside the instance lock
  (attribute named ``_lock`` or ending in ``_lock``).  ``__init__`` /
  ``__new__`` / ``__getstate__`` / ``__setstate__`` are exempt
  (construction and unpickling are single-threaded by protocol), as are
  chains through ``self._tls`` (``threading.local`` state is per-thread
  by construction).
* **NL604** — blocking I/O (``open``, ``.flush()``, ``subprocess.*``)
  lexically inside a ``with ....span(...):`` tracer body or an ``async
  def``.  Span durations feed the perf harness; hiding disk or process
  latency inside them corrupts the phase attribution, and an event loop
  must never block.  Library/benchmark scope (tests are exempt).
* **NL605** — two methods of one class acquire the same pair of locks in
  opposite nesting orders (an intraprocedural lock-order graph per
  class; lock identity is the attribute/variable name, matching the
  runtime lock-order recorder's by-name graph).  Opposite orders are a
  latent deadlock the moment the methods run on different threads.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from tools.numlint.concur import (
    GENERATOR_DRAW_METHODS,
    MUTATING_METHODS,
    FunctionNode,
    Submission,
    bound_names,
    callable_body,
    find_submissions,
    root_name,
)
from tools.numlint.core import FileContext, Finding, LintPass
from tools.numlint.passes import register

#: Methods where unlocked self-writes are legal in a ``@thread_shared``
#: class: construction and the pickle protocol run before the instance
#: is ever visible to a second thread.
_EXEMPT_METHODS = frozenset(
    {"__init__", "__new__", "__getstate__", "__setstate__"}
)

#: First-attribute chains through ``self`` that NL603 never flags:
#: ``_tls`` is per-thread by construction (``threading.local``) and
#: ``_lock`` installation is the synchronization itself.
_EXEMPT_SELF_ATTRS = frozenset({"_tls", "_lock"})


def _decorator_is_thread_shared(node: ast.expr) -> bool:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id == "thread_shared"
    if isinstance(node, ast.Attribute):
        return node.attr == "thread_shared"
    return False


def _self_chain(node: ast.AST) -> list[str] | None:
    """Attribute names from ``self`` outward (``self.a.b`` → ``[a, b]``).

    Subscripts are transparent (``self.a[k].b`` → ``[a, b]``); returns
    None when the chain does not root at a bare ``self``.
    """
    attrs: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            attrs.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            break
    if isinstance(node, ast.Name) and node.id == "self":
        attrs.reverse()
        return attrs
    return None


def _lock_name(expr: ast.expr) -> str | None:
    """The lock identity of a ``with`` context expression, if it is one.

    Recognizes ``self.<attr>`` and bare names whose identifier is
    ``_lock`` or ends in ``_lock`` — the repository's naming contract
    for instance locks.
    """
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        if expr.value.id == "self":
            name = expr.attr
            if name == "_lock" or name.endswith("_lock"):
                return name
    elif isinstance(expr, ast.Name):
        if expr.id == "_lock" or expr.id.endswith("_lock"):
            return expr.id
    return None


def _is_span_call(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr == "span"
    )


@register
class ConcurrencySafetyPass(LintPass):
    name = "concurrency-safety"
    description = (
        "no shared-state mutation or shared RNG draws in pool-submitted "
        "callables; @thread_shared writes under the instance lock; no "
        "blocking I/O in span bodies; consistent lock nesting order"
    )
    codes = {
        "NL601": (
            "pool-submitted callable mutates shared (free/global/self) "
            "state"
        ),
        "NL602": (
            "pool-submitted callable draws from a shared RNG without "
            "per-task spawning"
        ),
        "NL603": (
            "@thread_shared attribute write outside `with self._lock:`"
        ),
        "NL604": "blocking I/O inside a tracer span body or async context",
        "NL605": "locks acquired in inconsistent order across methods",
    }

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        yield from self._check_submissions(ctx)
        yield from self._check_thread_shared(ctx)
        if not ctx.is_test:
            yield from self._check_blocking_io(ctx)
        yield from self._check_lock_order(ctx)

    # -- NL601 / NL602: escape analysis over submitted callables ------------

    def _check_submissions(self, ctx: FileContext) -> Iterator[Finding]:
        seen: set[tuple[int, bool]] = set()
        for sub in find_submissions(ctx.tree, ctx.qualified):
            key = (id(sub.callable_node), sub.self_is_shared)
            if key in seen:
                continue
            seen.add(key)
            yield from self._check_one_callable(ctx, sub)

    def _is_shared(
        self, name: str | None, bound: set[str], sub: Submission
    ) -> bool:
        if name is None:
            return False
        if name == "self":
            return sub.self_is_shared
        return name not in bound

    def _check_one_callable(
        self, ctx: FileContext, sub: Submission
    ) -> Iterator[Finding]:
        fn: FunctionNode = sub.callable_node
        bound = bound_names(fn)
        for stmt in callable_body(fn):
            for node in ast.walk(stmt):
                yield from self._check_escape_node(ctx, node, bound, sub)

    def _check_escape_node(
        self,
        ctx: FileContext,
        node: ast.AST,
        bound: set[str],
        sub: Submission,
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.Attribute, ast.Subscript)) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            root = root_name(node)
            if self._is_shared(root, bound, sub):
                yield self.emit(
                    ctx,
                    node,
                    "NL601",
                    f"callable {sub.display!r} submitted to a worker pool "
                    f"mutates shared state rooted at {root!r}; worker "
                    "tasks must write only locals/arguments — move the "
                    "mutation to the dispatching thread",
                )
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            # a Store on a name the callable does not bind is a
            # global/nonlocal write escaping into the submitting scope
            if node.id not in bound:
                yield self.emit(
                    ctx,
                    node,
                    "NL601",
                    f"callable {sub.display!r} submitted to a worker pool "
                    f"assigns global/nonlocal {node.id!r}; return the "
                    "value instead and apply it on the dispatching thread",
                )
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            root = root_name(node.func.value)
            if not self._is_shared(root, bound, sub):
                return
            if node.func.attr in MUTATING_METHODS:
                yield self.emit(
                    ctx,
                    node,
                    "NL601",
                    f"callable {sub.display!r} submitted to a worker pool "
                    f"calls mutating method .{node.func.attr}() on shared "
                    f"{root!r}; collect results and mutate on the "
                    "dispatching thread",
                )
            elif (
                node.func.attr in GENERATOR_DRAW_METHODS
                and root not in ctx.aliases
            ):
                yield self.emit(
                    ctx,
                    node,
                    "NL602",
                    f"callable {sub.display!r} submitted to a worker pool "
                    f"draws .{node.func.attr}() from shared RNG {root!r}; "
                    "spawn a per-task generator "
                    "(repro.utils.rng.spawn) or pass one as an argument",
                )

    # -- NL603: @thread_shared writes must hold the instance lock -----------

    def _check_thread_shared(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(
                _decorator_is_thread_shared(d) for d in node.decorator_list
            ):
                continue
            for stmt in node.body:
                if (
                    isinstance(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    and stmt.name not in _EXEMPT_METHODS
                ):
                    for child in stmt.body:
                        yield from self._walk_locked(ctx, child, False)

    def _walk_locked(
        self, ctx: FileContext, node: ast.AST, locked: bool
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                yield from self._walk_locked(ctx, item, locked)
            inner = locked or any(
                _lock_name(item.context_expr) is not None
                for item in node.items
            )
            for stmt in node.body:
                yield from self._walk_locked(ctx, stmt, inner)
            return
        yield from self._check_locked_node(ctx, node, locked)
        for child in ast.iter_child_nodes(node):
            yield from self._walk_locked(ctx, child, locked)

    def _check_locked_node(
        self, ctx: FileContext, node: ast.AST, locked: bool
    ) -> Iterator[Finding]:
        if locked:
            return
        if isinstance(node, (ast.Attribute, ast.Subscript)) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            chain = _self_chain(node)
            if chain and chain[0] not in _EXEMPT_SELF_ATTRS:
                yield self.emit(
                    ctx,
                    node,
                    "NL603",
                    f"write to self.{'.'.join(chain)} in a @thread_shared "
                    "class outside `with self._lock:`",
                )
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr not in MUTATING_METHODS:
                return
            chain = _self_chain(node.func.value)
            if chain and chain[0] not in _EXEMPT_SELF_ATTRS:
                yield self.emit(
                    ctx,
                    node,
                    "NL603",
                    f"mutating call self.{'.'.join(chain)}."
                    f"{node.func.attr}() in a @thread_shared class "
                    "outside `with self._lock:`",
                )

    # -- NL604: no blocking I/O inside span bodies / async defs -------------

    def _check_blocking_io(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                for stmt in node.body:
                    yield from self._walk_span(
                        ctx, stmt, blocking_banned=True, where="an async def"
                    )
            elif isinstance(node, (ast.With, ast.AsyncWith)) and any(
                _is_span_call(item.context_expr) for item in node.items
            ):
                for stmt in node.body:
                    yield from self._walk_span(
                        ctx,
                        stmt,
                        blocking_banned=True,
                        where="a tracer span body",
                    )

    def _walk_span(
        self, ctx: FileContext, node: ast.AST, blocking_banned: bool, where: str
    ) -> Iterator[Finding]:
        # nested functions are not executed in the span / on the loop
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        if blocking_banned and isinstance(node, ast.Call):
            reason = self._blocking_reason(ctx, node)
            if reason is not None:
                yield self.emit(
                    ctx,
                    node,
                    "NL604",
                    f"{reason} inside {where}; blocking I/O skews span "
                    "timings (and stalls an event loop) — move it outside "
                    "the instrumented region",
                )
        for child in ast.iter_child_nodes(node):
            yield from self._walk_span(ctx, child, blocking_banned, where)

    def _blocking_reason(
        self, ctx: FileContext, call: ast.Call
    ) -> str | None:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "open":
            return "open() call"
        if isinstance(func, ast.Attribute) and func.attr == "flush":
            return ".flush() call"
        qual = ctx.qualified(func)
        if qual is not None and qual.startswith("subprocess."):
            return f"{qual}() call"
        return None

    # -- NL605: consistent lock nesting order per class ---------------------

    def _check_lock_order(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class_lock_order(ctx, node)

    def _check_class_lock_order(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        edges: dict[str, set[str]] = {}

        def reachable(src: str, dst: str) -> bool:
            seen = {src}
            frontier = [src]
            while frontier:
                cur = frontier.pop()
                if cur == dst:
                    return True
                for nxt in edges.get(cur, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            return False

        def visit(
            node: ast.AST, held: list[str], method: str
        ) -> Iterator[Finding]:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                names = [
                    n
                    for n in (
                        _lock_name(item.context_expr) for item in node.items
                    )
                    if n is not None
                ]
                for name in names:
                    for outer in held:
                        if outer == name:
                            continue
                        if reachable(name, outer):
                            yield self.emit(
                                ctx,
                                node,
                                "NL605",
                                f"method {method!r} acquires {name!r} "
                                f"while holding {outer!r}, but another "
                                f"method of {cls.name!r} nests them in "
                                "the opposite order — pick one order "
                                "(latent deadlock)",
                            )
                        else:
                            edges.setdefault(outer, set()).add(name)
                inner = held + names
                for stmt in node.body:
                    yield from visit(stmt, inner, method)
                return
            for child in ast.iter_child_nodes(node):
                yield from visit(child, held, method)

        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in stmt.body:
                    yield from visit(child, [], stmt.name)
