"""Contract rollout: contracted modules must contract their public API.

A module opts into shapelint by importing ``shape_contract``; from then on
every *public module-level array function* (one whose parameter or return
annotations mention an array type) is expected to carry a contract, so the
module's shape conventions stay machine-checked as it grows.  Helpers with
genuinely polymorphic shapes opt out with an inline
``# numlint: disable=NL530``.

* **NL530** — a public module-level function with array-typed parameters
  (or an array return) in a module that imports ``shape_contract`` but
  carries no ``@shape_contract`` decorator.

Scope: library code only — benchmarks/examples/tests are consumers, not
the contracted API surface.  Methods are exempt: the public entry points
the REMBO pipeline composes (``pairwise_sq_dists``, ``clip_to_box``,
``uniform_initial_design``, ...) are module-level, and method contracts
remain opt-in.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from tools.numlint.core import FileContext, Finding, LintPass
from tools.numlint.passes import register
from tools.numlint.shapes import DECORATOR_NAMES, contract_decorator

#: Annotation substrings that mark a parameter/return as array-typed.
_ARRAY_MARKERS = ("FloatArray", "IntArray", "ndarray", "ArrayLike")

#: Path fragments whose modules are contracted unconditionally: new
#: subsystems held to the contract discipline from their first commit,
#: whether or not they happen to import the decorator yet.
ROLLOUT_OPT_IN_FRAGMENTS = (
    "repro/runtime/",
    "repro/telemetry/",
    "repro/backends",
    "repro/serve/",
    "repro/gp/surrogate",
    "repro/gp/sparse",
)


def module_is_contracted(ctx: FileContext) -> bool:
    """True when the module imports ``shape_contract`` or lives under an
    opted-in path fragment (:data:`ROLLOUT_OPT_IN_FRAGMENTS`)."""
    relpath = ctx.relpath.replace("\\", "/")
    if any(fragment in relpath for fragment in ROLLOUT_OPT_IN_FRAGMENTS):
        return True
    return any(
        target in DECORATOR_NAMES or target.endswith(".shape_contract")
        for target in ctx.aliases.values()
    )


def _annotation_is_array(node: ast.expr | None) -> bool:
    if node is None:
        return False
    text = ast.unparse(node)
    return any(marker in text for marker in _ARRAY_MARKERS)


def _uses_arrays(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    args = node.args
    every = args.posonlyargs + args.args + args.kwonlyargs
    if any(_annotation_is_array(a.annotation) for a in every):
        return True
    return _annotation_is_array(node.returns)


@register
class ContractRolloutPass(LintPass):
    name = "contract-rollout"
    description = (
        "public array functions in shape-contracted modules must carry "
        "@shape_contract"
    )
    codes = {
        "NL530": "public array function in a contracted module lacks a "
        "@shape_contract annotation",
    }

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.is_library:
            return
        if not module_is_contracted(ctx):
            return
        yield from self._check(ctx)

    def _check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            if not _uses_arrays(node):
                continue
            if contract_decorator(node, ctx.qualified) is not None:
                continue
            yield self.emit(
                ctx,
                node,
                "NL530",
                f"{node.name} takes/returns arrays in a contracted module "
                "but declares no @shape_contract (annotate it, or opt out "
                "with '# numlint: disable=NL530')",
            )
