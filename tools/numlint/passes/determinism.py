"""Determinism & replay safety: the NL7xx family over the effect index.

The runtime's two load-bearing guarantees — content-addressed dedup
(``ResultCache``) and bitwise kill-and-resume (``RunLedger``) — hold only
if everything *reachable* from a cache key, a ledger record or an
``Objective.evaluate`` is deterministic.  These rules consume the
interprocedural effect index from :mod:`tools.numlint.effects`, so a
``cache_key`` that calls a helper that calls ``time.time`` is flagged even
though no impure call appears in its own body.

* **NL701** — an impure effect (``TIME``/``GLOBAL_RNG``/``ENV``/``ADDR``/
  ``NONDET_ITER``) is reachable from a cache-key or digest implementation
  (a function named ``cache_key``/``key_for*``/``*digest*``, or one that
  constructs a ``cache_key`` value).  An impure key silently forks the
  content-addressed store: the same point hashes differently across
  processes, so resume re-simulates and cross-campaign dedup misses.
* **NL702** — wall-clock time is reachable from a function that writes
  ledger records or trace-span attributes (``ledger.append``, ``_log``,
  ``record_span``, ``annotate``).  The interprocedural generalization of
  NL401: replayed ledgers and re-run traces must be byte-comparable, so
  only monotonic durations may be recorded.
* **NL703** — global or unseeded RNG (legacy ``np.random.*``, stdlib
  ``random``, unseeded ``default_rng()``, OS entropy) is reachable from an
  ``evaluate``/``solve`` path.  Draws from hidden global state make the
  objective value depend on call order, which breaks both replay
  verification and cross-method result dedup.
* **NL704** — iteration over an unordered collection is reachable from a
  function that serializes (``json.dumps``/``json.dump``), digests or
  writes ledger records.  Set order varies with ``PYTHONHASHSEED``; two
  runs serialize different bytes for equal data.
* **NL705** — a resource with ``close()``/``shutdown()`` (pool, executor,
  file handle, socket) is bound to a local in library code outside a
  ``with`` block or ``try/finally``.  On the failure paths the replay
  verifier exercises (kill mid-batch, resume), a leaked pool strands
  worker processes and a leaked handle loses buffered ledger lines.
  Storing the resource on ``self`` (object-owned lifecycle) is exempt.
* **NL706** — a swallowed exception (bare ``except:`` or a handler whose
  body is only ``pass``/``...``/``continue``) in the persistence layer
  (``repro.runtime``/``repro.telemetry``).  A silently failed ledger or
  checkpoint write turns the next resume into corruption; failures on
  write paths must surface or be recorded.

Scope: ``src/`` only (NL701–NL704 interprocedural, falling back to
file-local inference when run standalone).  Tests, benchmarks and
fixtures are exempt.  Deliberate exceptions carry
``# numlint: disable=NL70x`` plus a reason comment on the same line.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterable, Iterator, Sequence

from tools.numlint.core import FileContext, Finding, LintPass
from tools.numlint.effects import EffectIndex, build_effect_index
from tools.numlint.passes import register

#: Effects that poison a cache key (NL701).  IO is deliberately absent:
#: reading bytes to hash them is a legitimate digest implementation.
_KEY_VETO = ("TIME", "GLOBAL_RNG", "ENV", "ADDR", "NONDET_ITER")

#: Method/function names that *are* cache-key or digest implementations.
def _is_key_name(name: str) -> bool:
    return (
        name == "cache_key"
        or name.startswith("key_for")
        or "digest" in name
    )


#: Attribute-call names that write ledger records or trace-span attrs.
_RECORD_SINK_ATTRS = frozenset({"record_span", "annotate", "_log"})

#: Serialization entry points for NL704.
_SERIALIZE_CALLS = frozenset({"json.dumps", "json.dump"})

#: Constructors returning objects that must be closed/shut down.
_RESOURCE_NAMES = frozenset(
    {
        "WorkerPool",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
        "Pool",
    }
)
_RESOURCE_QUALS = frozenset(
    {
        "open",
        "socket.socket",
        "socket.create_connection",
        "multiprocessing.Pool",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
        "repro.utils.parallel.WorkerPool",
    }
)

#: Persistence-layer module prefixes for NL706.
_PERSISTENCE_PREFIXES = ("repro.runtime", "repro.telemetry")


def _receiver_dotted(node: ast.expr) -> str | None:
    """``self._ledger.append`` → ``"self._ledger"`` (None if dynamic)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _walk_own_body(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested ``def`` bodies."""
    stack: list[ast.AST] = list(node.body)
    while stack:
        cur = stack.pop()
        yield cur
        for child in ast.iter_child_nodes(cur):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)


def _is_record_sink_call(node: ast.Call) -> bool:
    if not isinstance(node.func, ast.Attribute):
        return False
    attr = node.func.attr
    if attr in _RECORD_SINK_ATTRS:
        return True
    if attr in ("append", "record"):
        receiver = _receiver_dotted(node.func.value)
        return receiver is not None and "ledger" in receiver.lower()
    return False


def _is_serialize_sink_call(ctx: FileContext, node: ast.Call) -> bool:
    qual = ctx.qualified(node.func)
    if qual in _SERIALIZE_CALLS:
        return True
    if qual is not None and "digest" in qual.rsplit(".", 1)[-1]:
        return True
    if isinstance(node.func, ast.Attribute) and "digest" in node.func.attr:
        return True
    return _is_record_sink_call(node)


def _assigns_cache_key(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when the function constructs a ``cache_key`` value by name."""
    for stmt in _walk_own_body(node):
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and "cache_key" in target.id:
                return True
            if isinstance(target, ast.Attribute) and "cache_key" in target.attr:
                return True
    return False


def _swallowing_handler(handler: ast.ExceptHandler) -> bool:
    """A handler whose body discards the error without acting on it."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Continue):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / bare ``...``
        return False
    return True


@register
class DeterminismPass(LintPass):
    name = "determinism"
    description = (
        "interprocedural effect inference: impure code reachable from "
        "cache keys, ledger records and evaluate/solve paths; resource "
        "lifecycles; swallowed persistence errors"
    )
    codes = {
        "NL701": "impure effect reachable from a cache-key/digest implementation",
        "NL702": "wall-clock read reachable from ledger/trace record construction",
        "NL703": "global or unseeded RNG reachable from an evaluate/solve path",
        "NL704": "unordered iteration reachable from a serialization/digest sink",
        "NL705": "closeable resource created outside with/try-finally in library code",
        "NL706": "swallowed exception on a persistence write path",
    }

    #: ``--explain`` registry: code → (triggering snippet, clean snippet).
    examples: ClassVar[dict[str, tuple[str, str]]] = {
        "NL701": (
            "def cache_key(self) -> str:\n"
            "    return f\"{self._tag}-{time.time()}\"",
            "def cache_key(self) -> str:\n"
            "    return f\"{self._tag}[d={self.dim}]\"",
        ),
        "NL702": (
            "def _finish(self, record):\n"
            "    record[\"at\"] = datetime.datetime.now().isoformat()\n"
            "    self._ledger.append(record)",
            "def _finish(self, record, seconds):\n"
            "    record[\"seconds\"] = seconds  # monotonic delta\n"
            "    self._ledger.append(record)",
        ),
        "NL703": (
            "def evaluate(self, X):\n"
            "    noise = np.random.normal(size=X.shape[0])\n"
            "    return self._f(X) + noise",
            "def evaluate(self, X):\n"
            "    noise = self._rng.normal(size=X.shape[0])  # seeded Generator\n"
            "    return self._f(X) + noise",
        ),
        "NL704": (
            "def dump(self, names: set[str]) -> str:\n"
            "    return json.dumps([n for n in names])",
            "def dump(self, names: set[str]) -> str:\n"
            "    return json.dumps(sorted(names))",
        ),
        "NL705": (
            "def run(tasks):\n"
            "    pool = WorkerPool(kind=\"process\", n_jobs=4)\n"
            "    return pool.run_tasks(fn, tasks)",
            "def run(tasks):\n"
            "    pool = WorkerPool(kind=\"process\", n_jobs=4)\n"
            "    try:\n"
            "        return pool.run_tasks(fn, tasks)\n"
            "    finally:\n"
            "        pool.close()",
        ),
        "NL706": (
            "try:\n"
            "    ledger.append(event)\n"
            "except Exception:\n"
            "    pass",
            "try:\n"
            "    ledger.append(event)\n"
            "except OSError as exc:\n"
            "    raise LedgerWriteError(str(exc)) from exc",
        ),
    }

    def __init__(self) -> None:
        self._index: EffectIndex | None = None

    def prepare(self, contexts: Sequence[FileContext]) -> None:
        self._index = build_effect_index(contexts)

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.is_test or not ctx.is_library:
            return
        index = self._index
        if index is None or ctx.relpath not in {
            info.relpath for info in index.functions.values()
        }:
            # standalone run (fixture tests): degrade to file-local inference
            index = build_effect_index([ctx])
        yield from self._check_effects(ctx, index)
        yield from self._check_resources(ctx)
        yield from self._check_swallowed(ctx)

    # -- NL701–NL704: effect-index rules -------------------------------------

    def _check_effects(
        self, ctx: FileContext, index: EffectIndex
    ) -> Iterator[Finding]:
        for qualname, info in index.functions.items():
            if info.relpath != ctx.relpath:
                continue
            node = info.node
            short = qualname.rsplit(".", 1)[-1]
            effects = index.effects_of(qualname)
            if not effects:
                continue
            if _is_key_name(short) or _assigns_cache_key(node):
                for eff in _KEY_VETO:
                    if eff in effects:
                        yield self.emit(
                            ctx,
                            node,
                            "NL701",
                            f"cache-key/digest implementation '{short}' has "
                            f"effect {eff} "
                            f"({index.render_chain(qualname, eff)}); keys "
                            "must hash to the same bytes in every process",
                        )
            if "TIME" in effects and self._has_record_sink(node):
                yield self.emit(
                    ctx,
                    node,
                    "NL702",
                    f"wall-clock read reaches a ledger/trace record in "
                    f"'{short}' ({index.render_chain(qualname, 'TIME')}); "
                    "replayed records must be byte-comparable — record "
                    "monotonic durations only",
                )
            if "GLOBAL_RNG" in effects and short in ("evaluate", "solve"):
                yield self.emit(
                    ctx,
                    node,
                    "NL703",
                    f"global/unseeded RNG reachable from '{short}' "
                    f"({index.render_chain(qualname, 'GLOBAL_RNG')}); thread "
                    "a seeded Generator (repro.utils.rng.spawn) so replay "
                    "and dedup see identical values",
                )
            if "NONDET_ITER" in effects and self._has_serialize_sink(ctx, node):
                yield self.emit(
                    ctx,
                    node,
                    "NL704",
                    f"unordered iteration feeds a serialization/digest sink "
                    f"in '{short}' "
                    f"({index.render_chain(qualname, 'NONDET_ITER')}); sort "
                    "before serializing so two runs emit identical bytes",
                )

    def _has_record_sink(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        return any(
            isinstance(stmt, ast.Call) and _is_record_sink_call(stmt)
            for stmt in _walk_own_body(node)
        )

    def _has_serialize_sink(
        self, ctx: FileContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        return any(
            isinstance(stmt, ast.Call) and _is_serialize_sink_call(ctx, stmt)
            for stmt in _walk_own_body(node)
        )

    # -- NL705: resource lifecycle -------------------------------------------

    def _check_resources(self, ctx: FileContext) -> Iterator[Finding]:
        scopes: list[Sequence[ast.stmt]] = [ctx.tree.body]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node.body)
        for body in scopes:
            yield from self._check_resource_scope(ctx, body)

    def _check_resource_scope(
        self, ctx: FileContext, body: Sequence[ast.stmt]
    ) -> Iterator[Finding]:
        protected = self._protected_names(body)
        for stmt in self._iter_scope(body):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue  # self.attr = ... is an object-owned lifecycle
            call = stmt.value
            ctor = self._resource_ctor(ctx, call)
            if ctor is None:
                continue
            if target.id in protected:
                continue
            yield self.emit(
                ctx,
                stmt,
                "NL705",
                f"'{target.id}' binds a {ctor} outside with/try-finally; on "
                "the kill/retry paths the runtime guarantees survive, a "
                "leaked pool strands workers and a leaked handle drops "
                "buffered writes — use 'with' or close() in a finally block",
            )

    def _iter_scope(self, body: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
        stack: list[ast.stmt] = list(body)
        while stack:
            stmt = stack.pop()
            yield stmt
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested scopes are checked separately
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    stack.append(child)

    def _resource_ctor(self, ctx: FileContext, node: ast.expr) -> str | None:
        if not isinstance(node, ast.Call):
            return None
        qual = ctx.qualified(node.func)
        if qual in _RESOURCE_QUALS:
            return qual
        if isinstance(node.func, ast.Name) and node.func.id in _RESOURCE_NAMES:
            return node.func.id
        if isinstance(node.func, ast.Attribute) and node.func.attr == "open":
            receiver = _receiver_dotted(node.func.value)
            # path.open() / self.path.open(); gzip.open etc. resolve above
            if receiver is not None and not receiver.startswith(("self", "cls")):
                return f"{receiver}.open() handle"
            if receiver is None:
                return ".open() handle"
        return None

    def _protected_names(self, body: Sequence[ast.stmt]) -> set[str]:
        """Names whose lifecycle the scope demonstrably manages."""
        protected: set[str] = set()
        for stmt in self._iter_scope(body):
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name):
                        protected.add(expr.id)
                    elif isinstance(expr, ast.Call):
                        # contextlib.closing(name) / ExitStack().enter_context
                        for arg in expr.args:
                            if isinstance(arg, ast.Name):
                                protected.add(arg.id)
            elif isinstance(stmt, ast.Try) and stmt.finalbody:
                for inner in stmt.finalbody:
                    for call in ast.walk(inner):
                        if (
                            isinstance(call, ast.Call)
                            and isinstance(call.func, ast.Attribute)
                            and call.func.attr in ("close", "shutdown")
                            and isinstance(call.func.value, ast.Name)
                        ):
                            protected.add(call.func.value.id)
            elif isinstance(stmt, ast.Return) and isinstance(
                stmt.value, ast.Name
            ):
                # ownership transfer: the caller receives the resource
                protected.add(stmt.value.id)
        return protected

    # -- NL706: swallowed persistence errors ---------------------------------

    def _check_swallowed(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module_name.startswith(_PERSISTENCE_PREFIXES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            bare = node.type is None
            if bare or _swallowing_handler(node):
                what = "bare except" if bare else "except-and-discard"
                yield self.emit(
                    ctx,
                    node,
                    "NL706",
                    f"{what} in the persistence layer; a silently failed "
                    "ledger/checkpoint write corrupts the next resume — "
                    "surface the error or record it in the ledger",
                )
