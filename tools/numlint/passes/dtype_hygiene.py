"""Dtype hygiene on the float64 hot path.

``repro.gp``, ``repro.kernels``, ``repro.acquisition`` and ``repro.optim``
are float64 end-to-end: the LAPACK bindings in ``gp.model`` are resolved
for double precision, and the workspace buffers are allocated as float64.
An array that arrives as float32 (or object, from a ragged list) silently
upcasts on first contact — or worse, flows into an ``out=`` buffer of the
wrong dtype and raises deep inside a kernel.

* **NL301** — ``np.asarray`` / ``np.array`` / ``np.asfortranarray`` /
  ``np.ascontiguousarray`` without an explicit ``dtype`` in a hot-path
  module.  The result dtype is inherited from arbitrary caller input;
  pass ``dtype=float`` at the boundary so everything downstream is
  provably float64.
* **NL302** — a reference to a reduced-precision float dtype
  (``np.float32`` / ``np.float16`` / ``np.half`` / ``np.single``) in a
  hot-path module, which would mix precisions with the float64 pipeline.

Scope: hot-path modules only (``src/repro/{gp,kernels,acquisition,optim}``).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from tools.numlint.core import FileContext, Finding, LintPass
from tools.numlint.passes import register

_CONVERTERS = frozenset(
    {
        "numpy.asarray",
        "numpy.array",
        "numpy.asfortranarray",
        "numpy.ascontiguousarray",
    }
)

_NARROW_FLOATS = frozenset(
    {
        "numpy.float32",
        "numpy.float16",
        "numpy.half",
        "numpy.single",
    }
)


@register
class DtypeHygienePass(LintPass):
    name = "dtype-hygiene"
    description = (
        "require explicit dtypes at array boundaries and forbid "
        "reduced-precision floats in the float64 hot path"
    )
    codes = {
        "NL301": "np.asarray/np.array without explicit dtype in hot-path module",
        "NL302": "reduced-precision float dtype in the float64 hot path",
    }

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.is_hot_path:
            return
        yield from self._check(ctx)

    def _check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                qual = ctx.qualified(node.func)
                if qual in _CONVERTERS:
                    has_dtype = any(
                        kw.arg in ("dtype", None) for kw in node.keywords
                    ) or len(node.args) >= 2
                    if not has_dtype:
                        name = qual.rsplit(".", 1)[-1]
                        yield self.emit(
                            ctx,
                            node,
                            "NL301",
                            f"np.{name} without dtype inherits the caller's "
                            "precision; hot-path modules are float64 — pass "
                            "dtype=float (or dtype=int for index arrays)",
                        )
            elif isinstance(node, (ast.Attribute, ast.Name)):
                qual = ctx.qualified(node)
                if qual in _NARROW_FLOATS:
                    yield self.emit(
                        ctx,
                        node,
                        "NL302",
                        f"{qual} mixes reduced precision into the float64 "
                        "hot path; the GP/kernel pipeline is double "
                        "precision end-to-end",
                    )
