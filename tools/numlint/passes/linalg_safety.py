"""Linear-algebra safety: no explicit inverses, no normal equations.

The GP stack (PR 1) standardized on Cholesky factorizations —
``repro.gp.model.chol_with_jitter`` + ``cho_solve`` for solves and
``inv_from_cholesky`` (LAPACK ``dpotri``) when a full inverse is genuinely
needed.  REMBO's reverse map (Eq. 12) additionally needs a pseudo-inverse
whose accuracy the dimension-selection procedure depends on.

* **NL101** — a call to ``numpy.linalg.inv`` / ``scipy.linalg.inv``.
  Explicit inversion is slower and less accurate than a factorization, and
  on a covariance matrix it silently drops positive-definiteness
  information.
* **NL102** — a normal-equation solve ``solve(E.T @ E, ...)`` (or the
  ``E @ E.T`` flavor).  Forming the Gram product squares the condition
  number: a matrix with ``cond(E) = 1e8`` becomes numerically singular.
  Use ``np.linalg.lstsq`` or a QR factorization.
* **NL103** — a direct ``scipy.linalg.cholesky`` / ``numpy.linalg.cholesky``
  call inside ``src/repro/gp/``.  Covariance factorizations there must go
  through ``repro.gp.model.chol_with_jitter`` so every solve shares the
  single retry/jitter entry point; the helper itself (and the deliberate
  fail-fast Schur-complement factorization in the incremental update)
  carries an inline suppression.

Scope: library and benchmark code.  Tests are exempt so reference
implementations can compare against the naive formulas.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from tools.numlint.core import FileContext, Finding, LintPass
from tools.numlint.passes import register

_INV_FUNCTIONS = frozenset({"numpy.linalg.inv", "scipy.linalg.inv"})
_SOLVE_FUNCTIONS = frozenset(
    {
        "numpy.linalg.solve",
        "scipy.linalg.solve",
        "numpy.linalg.lstsq",  # lstsq(E.T @ E, ...) is still normal equations
        "scipy.linalg.lstsq",
    }
)
_CHOLESKY_FUNCTIONS = frozenset(
    {"scipy.linalg.cholesky", "numpy.linalg.cholesky"}
)
#: Path fragment where raw Cholesky calls must route through the jittered
#: helper in ``repro.gp.model``.
_GP_FRAGMENT = "repro/gp/"


def _gram_product_base(node: ast.AST) -> ast.AST | None:
    """Return ``E`` when ``node`` is ``E.T @ E`` or ``E @ E.T``, else None."""
    if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult)):
        return None
    left, right = node.left, node.right
    if isinstance(left, ast.Attribute) and left.attr == "T":
        if ast.dump(left.value) == ast.dump(right):
            return left.value
    if isinstance(right, ast.Attribute) and right.attr == "T":
        if ast.dump(right.value) == ast.dump(left):
            return right.value
    return None


@register
class LinalgSafetyPass(LintPass):
    name = "linalg-safety"
    description = (
        "forbid explicit matrix inverses and normal-equation solves on "
        "Gram/covariance matrices"
    )
    codes = {
        "NL101": "explicit matrix inverse (np.linalg.inv / scipy.linalg.inv)",
        "NL102": "normal-equation solve(E.T @ E, ...) squares the condition number",
        "NL103": "raw cholesky in repro/gp/ outside chol_with_jitter",
    }

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.is_test:
            return
        yield from self._check(ctx)

    def _check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualified(node.func)
            if qual in _INV_FUNCTIONS:
                yield self.emit(
                    ctx,
                    node,
                    "NL101",
                    f"{qual} forms an explicit inverse; factorize instead "
                    "(repro.gp.model.chol_with_jitter + scipy cho_solve, or "
                    "inv_from_cholesky when the dense inverse is required)",
                )
                continue
            if qual in _SOLVE_FUNCTIONS and node.args:
                base = _gram_product_base(node.args[0])
                if base is not None:
                    base_src = ast.unparse(base)
                    yield self.emit(
                        ctx,
                        node,
                        "NL102",
                        f"normal equations on {base_src!r}: cond({base_src})^2 "
                        "amplifies round-off; use np.linalg.lstsq"
                        f"({base_src}, ...) or a QR factorization",
                    )
                    continue
            if qual in _CHOLESKY_FUNCTIONS and _GP_FRAGMENT in ctx.relpath:
                yield self.emit(
                    ctx,
                    node,
                    "NL103",
                    f"direct {qual} in repro/gp/; factorize through "
                    "repro.gp.model.chol_with_jitter so the retry/jitter "
                    "policy applies (inline-suppress deliberate fail-fast "
                    "sites)",
                )
