"""Nondeterminism sources in library and experiment code.

Failure-rate tables are produced by experiment drivers
(``repro.experiments``, ``benchmarks/``); a wall-clock read or an
iteration whose order varies between interpreter invocations makes two
"identical" runs disagree, which is indistinguishable from a real
regression in rare-failure counts.

* **NL401** — wall-clock reads (``time.time``, ``time.time_ns``,
  ``datetime.now``, ``datetime.utcnow``) in library/experiment code.
  Durations belong to ``time.perf_counter`` (monotonic, and allowed);
  wall-clock values leak into seeds, filenames and result ordering.
* **NL402** — iterating a set (``for x in {…}`` / ``in set(...)`` /
  ``list(set(...))``).  With string members, iteration order depends on
  ``PYTHONHASHSEED`` and differs between runs; wrap in ``sorted(...)``.
* **NL403** — a call to a stochastic ``scipy.optimize`` driver
  (``differential_evolution``, ``dual_annealing``, ``basinhopping``) or a
  ``.rvs(...)`` distribution draw without an explicit
  ``seed=``/``rng=``/``random_state=`` argument.

Scope: ``src/`` and ``benchmarks/`` (NL402/NL403 everywhere there;
NL401 also applies inside ``src``).  Tests are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from tools.numlint.core import FileContext, Finding, LintPass
from tools.numlint.passes import register

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.now",
        "datetime.utcnow",
    }
)

_STOCHASTIC_OPTIMIZERS = frozenset(
    {
        "scipy.optimize.differential_evolution",
        "scipy.optimize.dual_annealing",
        "scipy.optimize.basinhopping",
    }
)

_SEED_KWARGS = ("seed", "rng", "random_state")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _has_seed_kwarg(call: ast.Call) -> bool:
    return any(kw.arg in (None, *_SEED_KWARGS) for kw in call.keywords)


@register
class NondeterminismPass(LintPass):
    name = "nondeterminism"
    description = (
        "flag wall-clock reads, order-unstable iteration and unseeded "
        "scipy stochastic calls in library/experiment code"
    )
    codes = {
        "NL401": "wall-clock read (time.time / datetime.now) in library code",
        "NL402": "iteration over a set: order varies with PYTHONHASHSEED",
        "NL403": "unseeded stochastic scipy call in library/experiment code",
    }

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.is_test:
            return
        if not (ctx.is_library or ctx.is_benchmark):
            return
        yield from self._check(ctx)

    def _check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter):
                    yield self._set_iteration(ctx, node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield self._set_iteration(ctx, gen.iter)

    def _set_iteration(self, ctx: FileContext, node: ast.AST) -> Finding:
        return self.emit(
            ctx,
            node,
            "NL402",
            "iterating a set: order depends on PYTHONHASHSEED for str "
            "members; iterate sorted(...) for a reproducible order",
        )

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        qual = ctx.qualified(node.func)
        if qual in _WALL_CLOCK:
            yield self.emit(
                ctx,
                node,
                "NL401",
                f"{qual}() reads the wall clock; use time.perf_counter for "
                "durations and an explicit seed for anything that feeds "
                "results",
            )
            return
        if qual in _STOCHASTIC_OPTIMIZERS and not _has_seed_kwarg(node):
            short = qual.rsplit(".", 1)[-1]
            yield self.emit(
                ctx,
                node,
                "NL403",
                f"scipy.optimize.{short} without seed=; pass a seed derived "
                "from the experiment's Generator (repro.utils.rng.spawn)",
            )
            return
        # distribution draws: anything.rvs(...) without random_state
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "rvs"
            and not _has_seed_kwarg(node)
        ):
            yield self.emit(
                ctx,
                node,
                "NL403",
                "scipy distribution .rvs() without random_state=; draws "
                "come from scipy's global RNG and are irreproducible",
            )
        # materializing a set into an ordered container without sorting
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple")
            and len(node.args) == 1
            and _is_set_expr(node.args[0])
        ):
            yield self._set_iteration(ctx, node)
