"""Out-buffer contracts for in-place ``*_into`` kernels.

PR 1's hot path relies on functions like ``StationaryKernel._corr_into``
filling caller-owned buffers in place: the workspace hands out persistent
arrays, and correctness depends on those exact allocations being written —
a rebound local or a freshly returned array silently breaks the cache
while producing the right values once.

For every function whose name ends in ``_into``:

* **NL201** — no out-style parameter.  The convention is a parameter named
  ``out`` or ending in ``_out``; a ``*_into`` function without one cannot
  honor the contract.
* **NL202** — an out parameter is rebound by a plain assignment
  (``g_out = np.empty(...)``, a for-target, a with-alias or a walrus).
  Rebinding allocates a new buffer the caller never sees.  In-place
  augmented assignment (``g_out += ...``) is a write, not a rebind, and is
  allowed.
* **NL203** — a ``return`` whose value is not an out parameter (or None).
  Returning anything else means the result lives outside the caller's
  buffer.
* **NL204** — an out parameter that is never written on any path (no
  subscript store, no ``out=`` keyword, no in-place update, not forwarded
  to another ``*_into``).

Scope: everywhere, tests included — fixtures exercising the convention
must honor it too.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from tools.numlint.core import FileContext, Finding, LintPass, iter_function_defs
from tools.numlint.passes import register

#: Functions that write their first argument in place.
_FIRST_ARG_WRITERS = frozenset({"numpy.copyto", "numpy.place", "numpy.put"})


def _out_param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    names = [
        a.arg
        for a in (
            fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs
        )
    ]
    return [n for n in names if n == "out" or n.endswith("_out")]


def _subscript_base_name(node: ast.AST) -> str | None:
    while isinstance(node, ast.Subscript):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class _BufferUsage(ast.NodeVisitor):
    """Collect rebinds and writes of a set of buffer names inside one body."""

    def __init__(self, tracked: set[str], ctx: FileContext) -> None:
        self.tracked = tracked
        self.ctx = ctx
        self.rebinds: list[tuple[str, ast.AST]] = []
        self.written: set[str] = set()

    def _record_target(self, target: ast.AST, node: ast.AST) -> None:
        if isinstance(target, ast.Name) and target.id in self.tracked:
            self.rebinds.append((target.id, node))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_target(elt, node)
        elif isinstance(target, ast.Starred):
            self._record_target(target.value, node)
        elif isinstance(target, ast.Subscript):
            base = _subscript_base_name(target)
            if base in self.tracked:
                self.written.add(base)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_target(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # in-place update of an ndarray: a write, not a rebind
        if isinstance(node.target, ast.Name) and node.target.id in self.tracked:
            self.written.add(node.target.id)
        else:
            self._record_target(node.target, node)
        self.generic_visit(node)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self._record_target(node.target, node)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._record_target(node.target, node)
        self.generic_visit(node)

    def visit_withitem(self, node: ast.withitem) -> None:
        if node.optional_vars is not None:
            self._record_target(node.optional_vars, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if (
                kw.arg == "out"
                and isinstance(kw.value, ast.Name)
                and kw.value.id in self.tracked
            ):
                self.written.add(kw.value.id)
        qual = self.ctx.qualified(node.func)
        callee = qual.rsplit(".", 1)[-1] if qual else None
        if (callee and callee.endswith("_into")) or qual in _FIRST_ARG_WRITERS:
            # forwarding the buffer delegates the write
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id in self.tracked:
                    self.written.add(arg.id)
        if isinstance(node.func, ast.Attribute):
            base = node.func.value
            if (
                isinstance(base, ast.Name)
                and base.id in self.tracked
                and node.func.attr in ("fill", "sort", "partition", "setfield")
            ):
                self.written.add(base.id)
        self.generic_visit(node)


@register
class OutBufferPass(LintPass):
    name = "out-buffer"
    description = (
        "enforce the in-place contract of *_into functions: accept, write "
        "and preserve caller-owned output buffers"
    )
    codes = {
        "NL201": "*_into function without an out-style parameter",
        "NL202": "out parameter rebound (buffer reallocated) inside *_into",
        "NL203": "*_into returns something other than an out parameter/None",
        "NL204": "out parameter never written inside *_into",
    }

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        for fn in iter_function_defs(ctx.tree):
            if not fn.name.endswith("_into"):
                continue
            yield from self._check_function(ctx, fn)

    def _check_function(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        out_params = _out_param_names(fn)
        if not out_params:
            yield self.emit(
                ctx,
                fn,
                "NL201",
                f"{fn.name} is named *_into but takes no out-style "
                "parameter ('out' or '*_out'); in-place kernels must write "
                "caller-owned buffers",
            )
            return
        tracked = set(out_params)
        usage = _BufferUsage(tracked, ctx)
        for stmt in fn.body:
            usage.visit(stmt)
        for name, node in usage.rebinds:
            yield self.emit(
                ctx,
                node,
                "NL202",
                f"{fn.name} rebinds out parameter {name!r}; the caller's "
                "buffer is abandoned — write through it "
                f"({name}[...] = ..., np.<ufunc>(..., out={name})) instead",
            )
        for node in ast.walk(fn):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            if isinstance(value, ast.Constant) and value.value is None:
                continue
            if isinstance(value, ast.Name) and value.id in tracked:
                continue
            yield self.emit(
                ctx,
                node,
                "NL203",
                f"{fn.name} returns {ast.unparse(value)!r}; *_into functions "
                "return an out parameter (or None), never a fresh array",
            )
        for name in out_params:
            if name not in usage.written and not usage.rebinds:
                yield self.emit(
                    ctx,
                    fn,
                    "NL204",
                    f"{fn.name} never writes out parameter {name!r} "
                    "(no subscript store, out= keyword, in-place update or "
                    "*_into forward on any path)",
                )
