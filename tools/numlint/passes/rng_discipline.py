"""RNG discipline: no global-state randomness, no unseeded generators.

The paper's rare-failure counts are only meaningful when every run is
reproducible, so all randomness must flow through explicitly threaded
:class:`numpy.random.Generator` objects (``repro.utils.rng.as_generator``
is the sanctioned funnel).

* **NL001** — a legacy global-state call (``np.random.rand``,
  ``np.random.seed``, stdlib ``random.random``, ...).  These share hidden
  mutable state across the whole process: any library call that touches it
  perturbs every other consumer, and parallel workers silently correlate.
  Applies everywhere, tests included.
* **NL002** — ``np.random.default_rng()`` with no seed argument in library
  or benchmark code.  An unseeded generator draws entropy from the OS, so
  two runs of the "same" experiment diverge.  Tests are exempt (a test that
  wants OS entropy is making a deliberate choice).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from tools.numlint.core import FileContext, Finding, LintPass
from tools.numlint.passes import register

#: numpy.random attributes that are part of the Generator-era API and fine
#: to reference; anything else called on ``numpy.random`` is legacy global
#: state (or a bound-method of it).
_GENERATOR_ERA = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: stdlib ``random`` module-level functions that mutate the hidden global
#: Mersenne twister.
_STDLIB_GLOBAL = frozenset(
    {
        "random.random",
        "random.seed",
        "random.randint",
        "random.randrange",
        "random.uniform",
        "random.gauss",
        "random.normalvariate",
        "random.choice",
        "random.choices",
        "random.sample",
        "random.shuffle",
        "random.betavariate",
        "random.expovariate",
        "random.triangular",
        "random.getrandbits",
    }
)


def _is_unseeded(call: ast.Call) -> bool:
    """True when the call passes no seed at all (or an explicit None)."""
    args = [a for a in call.args if not isinstance(a, ast.Starred)]
    if len(call.args) != len(args):
        return False  # *args could carry a seed; give it the benefit
    positional_none = args and (
        isinstance(args[0], ast.Constant) and args[0].value is None
    )
    if args and not positional_none:
        return False
    seed_kwargs = [k for k in call.keywords if k.arg in (None, "seed")]
    for kw in seed_kwargs:
        if kw.arg is None:
            return False  # **kwargs could carry a seed
        if not (isinstance(kw.value, ast.Constant) and kw.value.value is None):
            return False
    return True


@register
class RngDisciplinePass(LintPass):
    name = "rng-discipline"
    description = (
        "forbid global-state randomness; require explicitly threaded, "
        "seedable Generators"
    )
    codes = {
        "NL001": "legacy global-state RNG call (np.random.* / random.*)",
        "NL002": "unseeded default_rng() in library/benchmark code",
    }

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        yield from self._check_calls(ctx)

    def _check_calls(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualified(node.func)
            if qual is None:
                continue
            if qual.startswith("numpy.random."):
                attr = qual.split(".", 2)[2]
                head = attr.split(".", 1)[0]
                if head == "RandomState":
                    yield self.emit(
                        ctx,
                        node,
                        "NL001",
                        "np.random.RandomState is the legacy RNG; use "
                        "np.random.default_rng / repro.utils.rng.as_generator",
                    )
                elif head not in _GENERATOR_ERA:
                    yield self.emit(
                        ctx,
                        node,
                        "NL001",
                        f"np.random.{attr} mutates hidden global RNG state; "
                        "thread an explicit np.random.Generator instead "
                        "(repro.utils.rng.as_generator)",
                    )
                elif (
                    head == "default_rng"
                    and not ctx.is_test
                    and _is_unseeded(node)
                ):
                    yield self.emit(
                        ctx,
                        node,
                        "NL002",
                        "default_rng() without a seed is irreproducible; "
                        "accept a seed/Generator parameter and pass it here",
                    )
            elif qual in _STDLIB_GLOBAL:
                yield self.emit(
                    ctx,
                    node,
                    "NL001",
                    f"stdlib {qual}() uses hidden global RNG state; use a "
                    "seeded random.Random or numpy Generator instead",
                )
