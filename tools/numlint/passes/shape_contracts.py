"""Shapelint: interprocedural checking of ``@shape_contract`` annotations.

The contract grammar (DESIGN.md §9) declares symbolic shapes for array
arguments and returns; this pass parses every contract in the analyzed
file set during :meth:`prepare`, seeds a symbolic environment from each
contracted function's own contract, and runs abstract interpretation over
the numpy expressions in every function body (``tools.numlint.shapes``).

* **NL501** — a malformed contract: the spec string does not parse, or is
  not a string literal (static analysis needs the literal).
* **NL502** — the contract names a parameter that is not in the function's
  signature.
* **NL510** — an intraprocedural shape conflict: an operation inside a
  contracted function forces two rigid dimension symbols to coincide
  (matmul inner-dimension mismatch ``(n, d) @ (D, m)``) or combines
  incompatible literal sizes.
* **NL511** — a ``return`` expression whose inferred shape cannot unify
  with any declared return alternative.
* **NL520** — an *interprocedural* mismatch: a call site passes arrays
  whose caller-side symbolic shapes cannot jointly unify with the callee's
  declared parameter shapes (e.g. the callee declares ``X: (n, d),
  A: (D, d)`` and the caller passes ``(n, D)``-shaped data with a
  ``(D, d)`` matrix, forcing ``d == D``).

Symbols are rigid per contract namespace: distinct symbols are assumed to
vary independently, so anything forcing them equal is a finding.  Scope:
library, benchmark and example code; tests are exempt (they pass bad
shapes on purpose to assert error paths).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Sequence

from tools.numlint.core import FileContext, Finding, LintPass
from tools.numlint.passes import register
from tools.numlint.shapes import (
    ArrayShape,
    ContractInfo,
    ContractParseError,
    ScalarDim,
    ShapeInferencer,
    collect_returns,
    contract_decorator,
    decorator_spec,
    parse_contract,
    render_shape,
    signature_names,
)


def build_contract_index(
    contexts: Sequence[FileContext],
) -> dict[str, ContractInfo]:
    """Index every parseable contract by the defining module's dotted name.

    Only module-level functions are indexed — method call sites resolve
    through instance attributes the alias map cannot see — but methods
    still get the intraprocedural NL51x checks in :meth:`run`.
    """
    index: dict[str, ContractInfo] = {}
    for ctx in contexts:
        if ctx.parse_error is not None:
            continue
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            dec = contract_decorator(node, ctx.qualified)
            if dec is None:
                continue
            spec = decorator_spec(dec)
            if spec is None:
                continue
            try:
                contract = parse_contract(spec)
            except ContractParseError:
                continue  # reported as NL501 by the per-file run
            info = ContractInfo(
                name=node.name,
                module=ctx.module_name,
                contract=contract,
                arg_names=tuple(signature_names(node)),
                has_varargs=node.args.vararg is not None
                or node.args.kwarg is not None,
                relpath=ctx.relpath,
                lineno=node.lineno,
            )
            index[info.qualname] = info
    return index


@register
class ShapeContractPass(LintPass):
    name = "shape-contracts"
    description = (
        "parse @shape_contract annotations and run interprocedural "
        "symbolic shape inference over numpy expressions"
    )
    codes = {
        "NL501": "malformed @shape_contract spec (must be a parseable "
        "string literal)",
        "NL502": "contract names a parameter missing from the signature",
        "NL510": "shape conflict inside a contracted function (rigid "
        "dimension symbols forced equal)",
        "NL511": "return shape cannot unify with the declared contract",
        "NL520": "call-site shapes conflict with the callee's contract",
    }

    def __init__(self) -> None:
        self._index: dict[str, ContractInfo] | None = None

    def prepare(self, contexts: Sequence[FileContext]) -> None:
        self._index = build_contract_index(contexts)

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.is_test:
            return
        index = (
            self._index
            if self._index is not None
            else build_contract_index([ctx])
        )

        def lookup(qual: str) -> ContractInfo | None:
            # Bare same-module calls resolve against the current module
            # first; imported names arrive fully qualified via the alias map.
            info = index.get(f"{ctx.module_name}.{qual}")
            if info is not None:
                return info
            return index.get(qual)

        for node, class_name in _iter_functions(ctx.tree):
            yield from self._check_function(ctx, node, class_name, lookup)
        yield from self._check_module_level(ctx, lookup)

    # -- per-function -------------------------------------------------------

    def _check_function(
        self,
        ctx: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
        lookup,
    ) -> Iterator[Finding]:
        dec = contract_decorator(node, ctx.qualified)
        contract = None
        if dec is not None:
            spec = decorator_spec(dec)
            if spec is None:
                yield self.emit(
                    ctx,
                    dec,
                    "NL501",
                    f"{node.name}: @shape_contract spec must be a string "
                    "literal so it can be checked statically",
                )
            else:
                try:
                    contract = parse_contract(spec)
                except ContractParseError as exc:
                    yield self.emit(
                        ctx, dec, "NL501", f"{node.name}: {exc}"
                    )
        env: dict = {}
        symbols: set[str] = set()
        if contract is not None:
            known = set(signature_names(node))
            unknown = sorted(set(contract.param_names) - known)
            if unknown:
                yield self.emit(
                    ctx,
                    dec if dec is not None else node,
                    "NL502",
                    f"{node.name}: contract names {unknown} not in the "
                    f"signature {sorted(known)}",
                )
                contract = None
        if contract is not None:
            for param in contract.params:
                arrays = [
                    a for a in param.alternatives if isinstance(a, ArrayShape)
                ]
                scalars = [
                    a for a in param.alternatives if isinstance(a, ScalarDim)
                ]
                for alt in arrays:
                    symbols.update(
                        d for d in alt.dims if isinstance(d, str) and d != "*"
                    )
                for alt in scalars:
                    symbols.add(alt.symbol)
                if len(param.alternatives) == 1 and arrays:
                    env[param.name] = tuple(
                        None if d == "*" else d for d in arrays[0].dims
                    )
                elif len(param.alternatives) == 1 and scalars:
                    env[param.name] = ()
            for ret in contract.returns:
                for alt in ret:
                    if isinstance(alt, ArrayShape):
                        symbols.update(
                            d
                            for d in alt.dims
                            if isinstance(d, str) and d != "*"
                        )

        inferencer = ShapeInferencer(env, symbols, ctx.qualified, lookup)
        inferencer.exec_block(node.body)
        for issue in inferencer.issues:
            yield self.emit(ctx, issue.node, issue.code, issue.message)

        if contract is not None and contract.returns:
            # Re-infer each return expression against the final environment.
            checker = ShapeInferencer(
                dict(inferencer.env), symbols, ctx.qualified, lookup
            )
            for ret in collect_returns(node):
                if ret.value is None:
                    continue
                yield from self._check_return(
                    ctx, node.name, contract, ret, checker
                )

    def _check_return(
        self,
        ctx: FileContext,
        fname: str,
        contract,
        ret: ast.Return,
        checker: ShapeInferencer,
    ) -> Iterator[Finding]:
        assert ret.value is not None
        if len(contract.returns) > 1:
            if not isinstance(ret.value, ast.Tuple):
                return  # can't statically split a non-literal tuple
            if len(ret.value.elts) != len(contract.returns):
                yield self.emit(
                    ctx,
                    ret,
                    "NL511",
                    f"{fname}: returns a {len(ret.value.elts)}-tuple, "
                    f"contract declares {len(contract.returns)} values",
                )
                return
            parts = list(ret.value.elts)
        else:
            parts = [ret.value]
        for alts, expr in zip(contract.returns, parts):
            actual = checker.infer(expr)
            if actual is None:
                continue
            ok = False
            for alt in alts:
                assert isinstance(alt, ArrayShape)
                if len(alt.dims) == len(actual) and all(
                    _return_dim_ok(declared, dim, checker.symbols)
                    for declared, dim in zip(alt.dims, actual)
                ):
                    ok = True
                    break
            if not ok:
                declared_text = " | ".join(a.render() for a in alts)
                yield self.emit(
                    ctx,
                    ret,
                    "NL511",
                    f"{fname}: return shape {render_shape(actual)} does not "
                    f"unify with the declared {declared_text}",
                )

    # -- module level -------------------------------------------------------

    def _check_module_level(
        self, ctx: FileContext, lookup
    ) -> Iterator[Finding]:
        """NL510/NL520 for top-level statements (script-style call sites)."""
        stmts = [
            s
            for s in ctx.tree.body
            if not isinstance(
                s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        if not stmts:
            return
        inferencer = ShapeInferencer({}, set(), ctx.qualified, lookup)
        inferencer.exec_block(stmts)
        for issue in inferencer.issues:
            yield self.emit(ctx, issue.node, issue.code, issue.message)


def _return_dim_ok(
    declared: str | int, dim: str | int | None, symbols: set[str]
) -> bool:
    """One return dimension under rigid-symbol semantics.

    Symbols in the function's own contract namespace must line up with
    themselves; dims we cannot prove different (unknowns, symbol-vs-int)
    pass.
    """
    if declared == "*" or dim is None:
        return True
    if isinstance(declared, int):
        return not isinstance(dim, int) or declared == dim
    if isinstance(dim, str):
        return declared == dim or dim not in symbols
    return True


def _iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str | None]]:
    """Module-level functions and first-level methods, with the class name."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, None
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item, node.name
