"""SARIF 2.1.0 output for CI code-scanning upload.

``--format=sarif`` serializes the *new* (non-baselined) findings as a
single-run SARIF log so GitHub code scanning (or any SARIF consumer) can
annotate PRs.  The rule table is built from every active pass's declared
``codes`` — including rules with zero results, so the scanner knows the
full set of checks that ran — plus the synthetic ``NL000`` parser rule.
Result fingerprints reuse the baseline fingerprint algorithm
(:mod:`tools.numlint.baseline`), giving consumers the same stable identity
across line-shifting edits that the baseline machinery uses.
"""

from __future__ import annotations

from typing import Sequence

from tools.numlint import __version__
from tools.numlint.baseline import fingerprint_findings
from tools.numlint.core import Finding, LintPass

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: The parser emits NL000 outside any registered pass; declare it so every
#: possible ``ruleId`` in ``results`` has a matching rule entry.
_PARSER_RULE = ("NL000", "file does not parse", "parser")


def _rule_entry(code: str, summary: str, pass_name: str) -> dict:
    return {
        "id": code,
        "name": code,
        "shortDescription": {"text": summary},
        "defaultConfiguration": {"level": "error"},
        "properties": {"pass": pass_name},
    }


def build_rules(passes: Sequence[LintPass]) -> list[dict]:
    """One SARIF ``reportingDescriptor`` per declared diagnostic code."""
    rules = [_rule_entry(*_PARSER_RULE)]
    for lint_pass in passes:
        for code, summary in sorted(lint_pass.codes.items()):
            rules.append(_rule_entry(code, summary, lint_pass.name))
    rules.sort(key=lambda rule: rule["id"])
    return rules


def build_sarif(
    findings: Sequence[Finding], passes: Sequence[LintPass]
) -> dict:
    """A complete SARIF 2.1.0 log dict for ``findings``.

    ``findings`` should already be baseline-filtered (new findings only);
    the caller decides that policy, this module just serializes.
    """
    rules = build_rules(passes)
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    fingerprints = {
        id(finding): digest
        for digest, finding in fingerprint_findings(findings).items()
    }
    results = []
    for finding in findings:
        result = {
            "ruleId": finding.code,
            "level": "error",
            "message": {"text": f"{finding.message} [{finding.pass_name}]"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.relpath,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {
                "numlint/v1": fingerprints[id(finding)]
            },
        }
        if finding.code in rule_index:
            result["ruleIndex"] = rule_index[finding.code]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "numlint",
                        "version": __version__,
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "build_rules", "build_sarif"]
