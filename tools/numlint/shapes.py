"""Symbolic shape inference for the NL5xx shapelint passes.

This module is the *static* twin of ``repro.utils.contracts``: it checks
the same contract grammar (see DESIGN.md §9) with a small abstract
interpreter over numpy expressions, without executing anything.  The
grammar parser itself (``parse_contract`` and the ``Contract`` /
``ArrayShape`` / ``ScalarDim`` / ``ParamSpec`` dataclasses) is the runtime
one, imported from ``repro.utils.contracts`` so the two sides cannot
drift; when ``repro`` is not installed, ``src/`` is resolved relative to
the repo checkout so ``tools/numlint`` stays runnable standalone.

Symbolic shapes are tuples of dimensions, where each dimension is a
contract symbol (``"n"``), an exact integer, or ``None`` (statically
unknown); a shape of ``None`` means the whole rank is unknown.  Dimension
symbols are *rigid* within one contract namespace: two distinct symbols are
assumed to denote independently varying sizes, so an operation that forces
``d == D`` (a matmul inner dimension, a callee binding one symbol to two
different caller dimensions) is a contract violation even though the sizes
might coincide at runtime.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Callable, Iterator, Mapping, Sequence

try:
    from repro.utils.contracts import (
        ArrayShape,
        Contract,
        ContractParseError,
        ParamSpec,
        ScalarDim,
        parse_contract,
    )
except ModuleNotFoundError:  # standalone checkout: put src/ on the path
    import sys
    from pathlib import Path

    _src = Path(__file__).resolve().parents[2] / "src"
    if str(_src) not in sys.path:
        sys.path.insert(0, str(_src))
    from repro.utils.contracts import (
        ArrayShape,
        Contract,
        ContractParseError,
        ParamSpec,
        ScalarDim,
        parse_contract,
    )

# A symbolic dimension: contract symbol, exact size, or unknown.
SymDim = "str | int | None"
# A symbolic shape: known-rank tuple of dimensions, or entirely unknown.
SymShape = "tuple[str | int | None, ...] | None"

#: Dotted names that resolve to the runtime decorator.
DECORATOR_NAMES = frozenset(
    {"repro.utils.contracts.shape_contract", "repro.utils.shape_contract",
     "shape_contract"}
)


# -- decorator discovery -----------------------------------------------------


def contract_decorator(
    node: "ast.FunctionDef | ast.AsyncFunctionDef",
    qualify: Callable[[ast.AST], "str | None"],
) -> "ast.Call | None":
    """Return the ``@shape_contract(...)`` decorator call on ``node``."""
    for dec in node.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        qual = qualify(dec.func)
        if qual in DECORATOR_NAMES or (
            qual is not None and qual.endswith(".shape_contract")
        ):
            return dec
    return None


def decorator_spec(dec: ast.Call) -> "str | None":
    """The literal spec string of a decorator call, or None if dynamic."""
    if dec.args and isinstance(dec.args[0], ast.Constant) and isinstance(
        dec.args[0].value, str
    ):
        return dec.args[0].value
    return None


def signature_names(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> list[str]:
    """Parameter names in positional order (``self``/``cls`` included)."""
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names


@dataclasses.dataclass(frozen=True)
class ContractInfo:
    """A contracted function, as seen by the interprocedural passes."""

    name: str
    module: str
    contract: Contract
    arg_names: tuple[str, ...]  # positional order, self/cls stripped
    has_varargs: bool
    relpath: str
    lineno: int

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}" if self.module else self.name


# -- rigid symbol unification ------------------------------------------------


def dims_conflict(a: "str | int | None", b: "str | int | None") -> bool:
    """True when two dimensions are *known* to differ (rigid symbols)."""
    if a is None or b is None:
        return False
    return a != b


def bind_dim(
    declared: "str | int",
    actual: "str | int | None",
    env: dict,
) -> bool:
    """Unify one declared (callee) dim against an actual (caller) dim.

    ``env`` maps callee symbols to caller dims.  Returns False on a rigid
    conflict; unknown actuals always unify.
    """
    if declared == "*" or actual is None:
        return True
    if isinstance(declared, int):
        return not (isinstance(actual, int) and actual != declared)
    bound = env.get(declared)
    if bound is None:
        env[declared] = actual
        return True
    return not dims_conflict(bound, actual)


def match_shape(
    shape: ArrayShape,
    actual: "tuple[str | int | None, ...]",
    env: dict,
) -> bool:
    """Unify a declared array shape against an actual symbolic shape."""
    if len(shape.dims) != len(actual):
        return False
    trial = dict(env)
    for declared, dim in zip(shape.dims, actual):
        if not bind_dim(declared, dim, trial):
            return False
    env.clear()
    env.update(trial)
    return True


def instantiate(
    shape: ArrayShape, env: Mapping
) -> "tuple[str | int | None, ...]":
    """Map a declared shape through a symbol environment (caller's view)."""
    dims: list[str | int | None] = []
    for d in shape.dims:
        if d == "*":
            dims.append(None)
        elif isinstance(d, int):
            dims.append(d)
        else:
            dims.append(env.get(d))
    return tuple(dims)


def render_shape(shape: "tuple[str | int | None, ...] | None") -> str:
    if shape is None:
        return "(?)"
    return "(" + ", ".join("?" if d is None else str(d) for d in shape) + ")"


# -- numpy shape algebra -----------------------------------------------------


def broadcast_shapes(
    a: "tuple[str | int | None, ...] | None",
    b: "tuple[str | int | None, ...] | None",
) -> "tuple[tuple[str | int | None, ...] | None, bool]":
    """Numpy broadcasting over symbolic shapes → (result, conflict).

    Conflicts are flagged only for incompatible *integer* dims (a symbolic
    dim might be 1, which broadcasts) — elementwise ops stay permissive
    where matmul is rigid.
    """
    if a is None or b is None:
        return None, False
    if len(a) < len(b):
        a, b = b, a
    pad = len(a) - len(b)
    out: list[str | int | None] = list(a[:pad])
    conflict = False
    for da, db in zip(a[pad:], b):
        if da == 1:
            out.append(db)
        elif db == 1 or da == db:
            out.append(da)
        elif isinstance(da, int) and isinstance(db, int):
            out.append(None)
            conflict = True
        else:
            out.append(da if db is None else None if da is None else da)
    return tuple(out), conflict


def matmul_shapes(
    a: "tuple[str | int | None, ...] | None",
    b: "tuple[str | int | None, ...] | None",
) -> "tuple[tuple[str | int | None, ...] | None, bool]":
    """``a @ b`` over symbolic shapes → (result, inner-dim conflict).

    Matmul requires exact inner-dimension equality, so rigid symbol
    mismatches (``d`` vs ``D``) are conflicts.
    """
    if a is None or b is None:
        return None, False
    if len(a) == 0 or len(b) == 0:
        return None, False
    if len(a) == 1 and len(b) == 1:
        return (), dims_conflict(a[0], b[0])
    if len(a) == 1:
        return b[:-2] + (b[-1],), dims_conflict(a[0], b[-2])
    if len(b) == 1:
        return a[:-1], dims_conflict(a[-1], b[0])
    return a[:-2] + (a[-2], b[-1]), dims_conflict(a[-1], b[-2])


def _axis_value(node: "ast.expr | None") -> "int | None":
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, int)
    ):
        return -node.operand.value
    return None


def reduce_shape(
    shape: "tuple[str | int | None, ...] | None",
    axis: "int | None",
    keepdims: bool,
) -> "tuple[str | int | None, ...] | None":
    if shape is None:
        return None
    if axis is None:
        return (1,) * len(shape) if keepdims else ()
    if not -len(shape) <= axis < len(shape):
        return None
    axis %= len(shape)
    if keepdims:
        return shape[:axis] + (1,) + shape[axis + 1 :]
    return shape[:axis] + shape[axis + 1 :]


_REDUCTIONS = frozenset(
    {"sum", "mean", "prod", "std", "var", "min", "max", "amin", "amax",
     "argmin", "argmax", "any", "all", "median", "nanmin", "nanmax",
     "nansum", "nanmean"}
)
_SHAPE_PRESERVING = frozenset(
    {"abs", "exp", "log", "log1p", "expm1", "sqrt", "square", "sin", "cos",
     "tan", "tanh", "sign", "floor", "ceil", "clip", "negative",
     "ascontiguousarray", "asfortranarray", "copy", "nan_to_num",
     "isfinite", "isnan", "isinf", "sort", "astype"}
)
_CONSTRUCTORS = frozenset({"zeros", "ones", "empty", "full"})


@dataclasses.dataclass(frozen=True)
class ShapeIssue:
    """A diagnostic raised during inference (converted to a Finding)."""

    node: ast.AST
    code: str
    message: str


class ShapeInferencer:
    """Abstract interpreter over numpy expressions for one function body.

    ``env`` maps local variable names to symbolic shapes; ``symbols`` is the
    set of contract symbols in scope (so ``reshape(n, d)``-style calls can
    keep symbolic dims).  ``lookup_contract`` resolves a dotted call target
    to a :class:`ContractInfo` for the interprocedural NL520 check; issues
    accumulate in ``self.issues``.
    """

    def __init__(
        self,
        env: "dict[str, tuple[str | int | None, ...] | None]",
        symbols: "set[str]",
        qualify: Callable[[ast.AST], "str | None"],
        lookup_contract: "Callable[[str], ContractInfo | None]",
    ) -> None:
        self.env = env
        self.symbols = symbols
        self.qualify = qualify
        self.lookup_contract = lookup_contract
        self.issues: list[ShapeIssue] = []

    # -- statements ---------------------------------------------------------

    def exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            shape = self.infer(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, shape, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                shape = self.infer(stmt.value)
                self._assign_target(stmt.target, shape, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self.infer(stmt.value)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                self.infer(stmt.value)
        elif isinstance(stmt, ast.If):
            self.infer(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.infer(stmt.iter)
            self._assign_target(stmt.target, None, stmt.iter)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.infer(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.infer(item.context_expr)
                if item.optional_vars is not None:
                    self._assign_target(item.optional_vars, None, stmt)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        # Nested defs / classes are analyzed separately; other statements
        # (pass, raise, import, ...) carry no shape information.

    def _assign_target(
        self, target: ast.expr, shape: SymShape, value: ast.AST
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = shape
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, None, value)
        # Attribute / subscript targets carry no local shape binding.

    # -- expressions --------------------------------------------------------

    def infer(self, node: ast.expr) -> SymShape:
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float, complex, bool)):
                return ()
            return None
        if isinstance(node, ast.Attribute):
            if node.attr == "T":
                base = self.infer(node.value)
                if base is not None and len(base) >= 2:
                    return base[:-2] + (base[-1], base[-2])
                return base
            return None
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.Subscript):
            return self._infer_subscript(node)
        if isinstance(node, ast.IfExp):
            self.infer(node.test)
            a = self.infer(node.body)
            b = self.infer(node.orelse)
            return a if a == b else None
        if isinstance(node, ast.Compare):
            self.infer(node.left)
            for comp in node.comparators:
                self.infer(comp)
            return None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.infer(child)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp, ast.Lambda)):
            return None
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.infer(child)
        return None

    def _infer_binop(self, node: ast.BinOp) -> SymShape:
        left = self.infer(node.left)
        right = self.infer(node.right)
        if isinstance(node.op, ast.MatMult):
            result, conflict = matmul_shapes(left, right)
            if conflict:
                self.issues.append(
                    ShapeIssue(
                        node,
                        "NL510",
                        "matmul inner-dimension mismatch: "
                        f"{render_shape(left)} @ {render_shape(right)}",
                    )
                )
            return result
        if isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow,
                      ast.FloorDiv, ast.Mod)
        ):
            result, conflict = broadcast_shapes(left, right)
            if conflict:
                self.issues.append(
                    ShapeIssue(
                        node,
                        "NL510",
                        "non-broadcastable operands: "
                        f"{render_shape(left)} vs {render_shape(right)}",
                    )
                )
            return result
        return None

    def _shape_literal(self, node: ast.expr) -> SymShape:
        """A shape tuple written in source: ``(n, 3)`` / ``n`` / ``X.shape``."""
        if isinstance(node, (ast.Tuple, ast.List)):
            dims: list[str | int | None] = []
            for elt in node.elts:
                dims.append(self._dim_literal(elt))
            return tuple(dims)
        dim = self._dim_literal(node)
        if dim is not None:
            return (dim,)
        if isinstance(node, ast.Attribute) and node.attr == "shape":
            return self.infer(node.value)
        return None

    def _dim_literal(self, node: ast.expr) -> "str | int | None":
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value if node.value >= 0 else None
        if isinstance(node, ast.Name) and node.id in self.symbols:
            return node.id
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "shape"
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, int)
        ):
            base = self.infer(node.value.value)
            if base is not None and -len(base) <= node.slice.value < len(base):
                return base[node.slice.value]
        return None

    def _call_keyword(self, node: ast.Call, name: str) -> "ast.expr | None":
        for kw in node.keywords:
            if kw.arg == name:
                return kw.value
        return None

    def _infer_call(self, node: ast.Call) -> SymShape:
        for arg in node.args:
            if not isinstance(arg, ast.Starred):
                self.infer(arg)
        for kw in node.keywords:
            self.infer(kw.value)

        qual = self.qualify(node.func)
        if qual is not None:
            info = self.lookup_contract(qual)
            if info is not None:
                return self._check_contract_call(node, info)
            if qual.startswith("numpy."):
                return self._infer_numpy_call(node, qual.split(".")[-1])
        # Array-method calls: base shape comes from the env.
        if isinstance(node.func, ast.Attribute):
            return self._infer_method_call(node, node.func)
        return None

    def _infer_numpy_call(self, node: ast.Call, fname: str) -> SymShape:
        if fname in _CONSTRUCTORS and node.args:
            return self._shape_literal(node.args[0])
        if fname in ("zeros_like", "ones_like", "empty_like", "full_like",
                     "asarray", "atleast_1d") and node.args:
            return self.infer(node.args[0])
        if fname in _SHAPE_PRESERVING and node.args:
            return self.infer(node.args[0])
        if fname == "transpose" and node.args:
            base = self.infer(node.args[0])
            if base is not None and len(node.args) == 1 and not node.keywords:
                return tuple(reversed(base))
            return None
        if fname == "reshape" and len(node.args) >= 2:
            if len(node.args) == 2:
                return self._shape_literal(node.args[1])
            return self._shape_literal(
                ast.Tuple(elts=list(node.args[1:]), ctx=ast.Load())
            )
        if fname == "dot" and len(node.args) == 2:
            result, conflict = matmul_shapes(
                self.infer(node.args[0]), self.infer(node.args[1])
            )
            if conflict:
                self.issues.append(
                    ShapeIssue(node, "NL510",
                               "np.dot inner-dimension mismatch")
                )
            return result
        if fname in _REDUCTIONS and node.args:
            axis = _axis_value(self._call_keyword(node, "axis"))
            if axis is None and len(node.args) >= 2:
                axis = _axis_value(node.args[1])
            keep = isinstance(
                self._call_keyword(node, "keepdims"), ast.Constant
            ) and bool(
                getattr(self._call_keyword(node, "keepdims"), "value", False)
            )
            return reduce_shape(self.infer(node.args[0]), axis, keep)
        return None

    def _infer_method_call(
        self, node: ast.Call, func: ast.Attribute
    ) -> SymShape:
        base = self.infer(func.value)
        if base is None:
            return None
        method = func.attr
        if method == "reshape" and node.args:
            if len(node.args) == 1:
                return self._shape_literal(node.args[0])
            return self._shape_literal(
                ast.Tuple(elts=list(node.args), ctx=ast.Load())
            )
        if method in _SHAPE_PRESERVING:
            return base
        if method == "ravel" or method == "flatten":
            if all(isinstance(d, int) for d in base):
                size = 1
                for d in base:
                    size *= int(d)  # type: ignore[arg-type]
                return (size,)
            return (base[0],) if len(base) == 1 else (None,)
        if method in _REDUCTIONS:
            axis = _axis_value(self._call_keyword(node, "axis"))
            if axis is None and node.args:
                axis = _axis_value(node.args[0])
            keep = isinstance(
                self._call_keyword(node, "keepdims"), ast.Constant
            ) and bool(
                getattr(self._call_keyword(node, "keepdims"), "value", False)
            )
            return reduce_shape(base, axis, keep)
        if method == "copy":
            return base
        return None

    def _infer_subscript(self, node: ast.Subscript) -> SymShape:
        base = self.infer(node.value)
        items = (
            list(node.slice.elts)
            if isinstance(node.slice, ast.Tuple)
            else [node.slice]
        )
        for item in items:
            if not isinstance(item, (ast.Slice, ast.Constant)):
                self.infer(item)
        if base is None:
            return None
        dims: list[str | int | None] = []
        axis = 0
        for item in items:
            if isinstance(item, ast.Constant) and item.value is None:
                dims.append(1)  # np.newaxis
                continue
            if isinstance(item, ast.Constant) and item.value is Ellipsis:
                return None
            if axis >= len(base):
                return None
            if isinstance(item, ast.Slice):
                full = (
                    item.lower is None
                    and item.upper is None
                    and item.step is None
                )
                dims.append(base[axis] if full else None)
                axis += 1
                continue
            index_shape = self.infer(item)
            if index_shape not in (None, ()):
                return None  # fancy / boolean indexing
            axis += 1  # integer index drops the dimension
        dims.extend(base[axis:])
        return tuple(dims)

    def _check_contract_call(
        self, node: ast.Call, info: ContractInfo
    ) -> SymShape:
        """NL520: unify caller-side argument shapes against a callee contract."""
        if any(isinstance(a, ast.Starred) for a in node.args) or any(
            kw.arg is None for kw in node.keywords
        ):
            return None
        bound: dict[str, ast.expr] = {}
        if info.has_varargs and len(node.args) > len(info.arg_names):
            return None
        for index, arg in enumerate(node.args):
            if index >= len(info.arg_names):
                return None
            bound[info.arg_names[index]] = arg
        for kw in node.keywords:
            assert kw.arg is not None
            bound[kw.arg] = kw.value
        env: dict = {}
        for param in info.contract.params:
            value = bound.get(param.name)
            if value is None:
                continue
            if isinstance(value, ast.Constant) and value.value is None:
                continue
            actual = self.infer(value)
            if actual is None:
                continue
            ok = False
            for alt in param.alternatives:
                if isinstance(alt, ScalarDim):
                    if len(actual) == 0:
                        dim = self._dim_literal(value)
                        if dim is not None:
                            if bind_dim(alt.symbol, dim, env):
                                ok = True
                        else:
                            ok = True
                    continue
                if actual == ():  # scalar against an array alternative
                    continue
                if match_shape(alt, actual, env):
                    ok = True
                    break
            if not ok and actual != ():
                declared = " | ".join(a.render() for a in param.alternatives)
                self.issues.append(
                    ShapeIssue(
                        node,
                        "NL520",
                        f"argument {param.name!r} to {info.qualname} has "
                        f"shape {render_shape(actual)}, contract declares "
                        f"{declared} (bindings "
                        + (
                            "{"
                            + ", ".join(
                                f"{k}={v}" for k, v in sorted(env.items())
                            )
                            + "}"
                            if env
                            else "{}"
                        )
                        + ")",
                    )
                )
                return None
        if len(info.contract.returns) == 1:
            alts = info.contract.returns[0]
            if len(alts) == 1 and isinstance(alts[0], ArrayShape):
                return instantiate(alts[0], env)
        return None


def collect_returns(
    node: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> Iterator[ast.Return]:
    """Yield ``return`` statements belonging to ``node`` itself."""
    stack: list[ast.AST] = list(node.body)
    while stack:
        item = stack.pop()
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        if isinstance(item, ast.Return):
            yield item
        for child in ast.iter_child_nodes(item):
            stack.append(child)
